"""Vectorized batch ring kernel: many rotor-router lanes per numpy op.

Sweeps spend their time stepping thousands of *independent* ring
configurations, so instead of vectorizing one configuration (the
:class:`repro.core.ring_dense.DenseRingRotorRouter` design) this kernel
stacks ``B`` of them into ``(B, n)`` arrays and advances all lanes with
one fixed sequence of numpy operations per round.

The ring's degree-2 structure makes the round-robin rule branch-free.
Storing the pointer as a bit ``p`` (1 = clockwise, 0 = anticlockwise)
instead of a +/-1 direction:

* clockwise exits  ``fwd = (c + p) >> 1``  (ceil(c/2) when the pointer
  is clockwise, floor(c/2) otherwise),
* anticlockwise exits ``bwd = c - fwd``,
* arrivals ``a(v) = fwd(v-1) + bwd(v+1)``,
* pointer flip iff ``c`` is odd: ``p ^= c & 1`` — fused here as
  ``p = (p ^ c) & 1`` since ``p`` is a bit.

Counts are bounded by the lane's agent count ``k``, so the dtype is
chosen per batch (int8 up to k=126, int16 up to k=32766, else int64)
— the dominant cost is memory traffic and halving the element width
roughly doubles the throughput.  All buffers are preallocated and the
arrival computation writes straight into the double buffer, so a round
is allocation-free.

Per-lane detection built on top of the kernel:

* **cover** — ``cover_rounds[b]`` records the round lane ``b`` first
  had every node visited (visits = agent arrivals, initial occupancy
  counts at round 0).  Single ``step`` calls track this exactly; the
  bulk drivers (``run`` / ``run_until_covered``) instead advance in
  windows with a one-op visited accumulator (``seen |= counts``),
  reconcile per-lane unvisited counts once per window, and pin exact
  cover rounds by replaying just-covered lanes from the window's
  snapshot — per-lane reductions are ~10x the cost of the element-wise
  round itself, so they must stay off the per-step path;
* **stabilization** — :func:`batch_limit_cycles` runs Brent's
  cycle-finding entirely in array ops: per-lane configurations are
  summarized by random-weight uint64 fingerprints (one matmul per
  round), "hare == snapshot" is a single ``(A,)`` comparison, and the
  rare fingerprint hits are confirmed byte-exactly before a lane is
  resolved, so the result is still the true minimal period; resolved
  lanes are compacted out of the working arrays, making stepping *and*
  bookkeeping scale with unresolved lanes;
* **return times** — :func:`batch_return_gaps` sorts lanes by schedule
  length so the active set is always a contiguous array prefix, scans
  one limit-cycle period per lane on that shrinking prefix, and
  records the worst per-node visit gap including the wrap-around gap,
  exactly as :func:`repro.core.limit.return_time_exact`.

**Round fusion** (``fuse_rounds``): the bulk drivers and the Brent
search amortize their per-round Python bookkeeping over epochs of up
to ``fuse_rounds`` reconciliation windows.  Cover tracking already ran
windowed; fusion widens the window to ``_WINDOW * fuse_rounds`` so the
per-lane reconciliation, snapshotting and replay run once per epoch
instead of once per 32 rounds.  The Brent phase-1 search buffers one
fingerprint row per round and defers the hare-vs-snapshot comparison
to the epoch boundary, replaying the epoch from its start snapshot for
the rare candidate lanes to confirm hits byte-exactly at their first
matching round.  Detection granularity never changes any reported
number: cover rounds are pinned by exact replay, periods by exact
in-epoch confirmation, so results are bit-identical for every
``fuse_rounds`` (enforced by ``tests/test_sweep_fused.py``).

Step-for-step equivalence with the reference engines is enforced by
``tests/test_sweep_batch_ring.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.telemetry import active as _telemetry
from repro.util.rng import derive_seed

_DTYPE_LIMITS = ((np.int8, 126), (np.int16, 32766), (np.int64, 2**62))

#: Lane-compaction threshold of the limit-cycle pipeline: working
#: arrays are rebuilt to hold only unresolved lanes once the live
#: fraction drops to this ratio.  1.0 compacts after every resolution
#: (cheapest rounds, most rebuilds), 0.0 never compacts; the default
#: bounds dead-row overhead at 2x while keeping rebuilds logarithmic
#: in the lane count.
DEFAULT_COMPACT_RATIO = 0.5


def _counts_dtype(max_agents: int) -> type:
    """Smallest signed dtype holding ``c + 1`` for every count ``c``."""
    for dtype, limit in _DTYPE_LIMITS:
        if max_agents <= limit:
            return dtype
    raise ValueError(f"batch kernel supports at most 2^62 agents, got {max_agents}")


class BatchRingKernel:
    """``B`` independent k-agent rotor-routers on n-rings, stepped together.

    Parameters
    ----------
    n:
        Ring size shared by every lane (>= 3).
    pointers:
        ``(B, n)`` array-like of initial directions, +1 (clockwise) or
        -1 per node, one row per lane.
    counts:
        ``(B, n)`` array-like of initial agent counts per node; every
        lane needs at least one agent.
    track_cover:
        Maintain per-lane visited sets and ``cover_rounds``.  Turn off
        for limit-cycle searches, which only need the configuration.
    fuse_rounds:
        Fusion factor of the bulk drivers: reconciliation windows span
        ``_WINDOW * fuse_rounds`` rounds, so per-lane cover bookkeeping
        (reduction + snapshot + replay) runs once per that many rounds.
        Results are bit-identical for every value (exact replay pins
        cover rounds); 1 reproduces the pre-fusion cadence.
    """

    def __init__(
        self,
        n: int,
        pointers: np.ndarray,
        counts: np.ndarray,
        track_cover: bool = True,
        fuse_rounds: int = 1,
    ) -> None:
        if n < 3:
            raise ValueError(f"ring requires n >= 3, got {n}")
        if fuse_rounds < 1:
            raise ValueError(
                f"fuse_rounds must be at least 1, got {fuse_rounds}"
            )
        directions = np.asarray(pointers)
        initial = np.asarray(counts)
        if directions.ndim != 2 or directions.shape[1] != n:
            raise ValueError(
                f"pointers must have shape (B, {n}), got {directions.shape}"
            )
        if initial.shape != directions.shape:
            raise ValueError(
                f"counts shape {initial.shape} does not match pointers "
                f"shape {directions.shape}"
            )
        if not np.all((directions == 1) | (directions == -1)):
            raise ValueError("pointers must be +1 or -1")
        if np.any(initial < 0):
            raise ValueError("counts must be non-negative")
        per_lane = initial.sum(axis=1)
        if np.any(per_lane < 1):
            raise ValueError("every lane requires at least one agent")

        self.n = n
        self.num_lanes = directions.shape[0]
        self.num_agents = per_lane.astype(np.int64)
        self.round = 0
        self.fuse_rounds = int(fuse_rounds)
        self._replays = 0
        self._epochs = 0

        dtype = _counts_dtype(int(per_lane.max()))
        # Pointer bit: 1 = clockwise (+1), 0 = anticlockwise (-1).
        self._ptr = (directions == 1).astype(dtype)
        self._counts = initial.astype(dtype)
        self._next = np.empty_like(self._counts)
        self._fwd = np.empty_like(self._counts)
        self._bwd = np.empty_like(self._counts)

        self._track_cover = bool(track_cover)
        self.cover_rounds = np.full(self.num_lanes, -1, dtype=np.int64)
        if self._track_cover:
            # Visited accumulator: ``seen |= counts`` each round keeps
            # a cell nonzero iff its node was ever occupied — one
            # element-wise op per round, no comparison or temporary.
            self._seen = self._counts.copy()
            self._unvisited = n - np.count_nonzero(self._seen, axis=1)
            self.cover_rounds[self._unvisited == 0] = 0
            self._all_covered = bool((self.cover_rounds >= 0).all())
        else:
            self._seen = None
            self._unvisited = None
            self._all_covered = True

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def _step_arith(self) -> None:
        """One round of the rotor-router arithmetic, no cover tracking."""
        c, p = self._counts, self._ptr
        fwd, bwd, nxt = self._fwd, self._bwd, self._next
        np.add(c, p, out=fwd)
        np.right_shift(fwd, 1, out=fwd)
        np.subtract(c, fwd, out=bwd)
        np.bitwise_xor(p, c, out=p)
        np.bitwise_and(p, 1, out=p)
        # arrivals(v) = fwd(v-1) + bwd(v+1), written into the back buffer
        np.add(fwd[:, :-2], bwd[:, 2:], out=nxt[:, 1:-1])
        np.add(fwd[:, -1], bwd[:, 1], out=nxt[:, 0])
        np.add(fwd[:, -2], bwd[:, 0], out=nxt[:, -1])
        self._counts, self._next = nxt, self._counts
        self.round += 1

    def _step_arith_subset(self, active: np.ndarray) -> None:
        """Advance only the ``active`` lanes (cost proportional to them).

        Used by the masked schedules of the limit-cycle search and the
        gap scan, where most lanes end up frozen: the frozen majority
        is never touched, instead of being snapshotted and restored.
        """
        c = self._counts[active]
        p = self._ptr[active]
        fwd = (c + p) >> 1
        bwd = c - fwd
        nxt = np.empty_like(c)
        nxt[:, 1:-1] = fwd[:, :-2] + bwd[:, 2:]
        nxt[:, 0] = fwd[:, -1] + bwd[:, 1]
        nxt[:, -1] = fwd[:, -2] + bwd[:, 0]
        self._counts[active] = nxt
        self._ptr[active] = (p ^ c) & 1
        self.round += 1

    def step(
        self,
        lane_mask: np.ndarray | None = None,
        need_visits: bool = True,
    ) -> np.ndarray | None:
        """Advance one synchronous round in every (masked) lane.

        ``lane_mask`` is an optional ``(B,)`` boolean array; lanes where
        it is false keep their configuration unchanged (used to freeze
        lanes whose per-lane schedule has ended).  Returns a ``(B, n)``
        boolean array marking the nodes that received at least one
        agent this round (all-false rows for frozen lanes) — or None
        when the caller passes ``need_visits=False`` and the kernel
        does not track cover, which keeps a masked step's cost
        proportional to the active lanes (the limit-cycle search's
        tail case).

        ``round`` counts ``step`` calls; with masks, callers manage
        per-lane time axes themselves.
        """
        want_visits = need_visits or (
            self._track_cover and not self._all_covered
        )
        if lane_mask is None:
            self._step_arith()
            visits = self._counts != 0 if want_visits else None
        else:
            active = np.flatnonzero(lane_mask)
            self._step_arith_subset(active)
            if want_visits:
                visits = np.zeros((self.num_lanes, self.n), dtype=bool)
                visits[active] = self._counts[active] != 0
            else:
                visits = None
        if self._track_cover and not self._all_covered:
            newly = visits & (self._seen == 0)
            np.bitwise_or(self._seen, self._counts, out=self._seen)
            # New visits are sparse (a lane's frontier grows by at most
            # two nodes per round), so update through indices.
            cells = np.flatnonzero(newly)
            if cells.size:
                lanes = cells // self.n
                self._unvisited -= np.bincount(
                    lanes, minlength=self.num_lanes
                )
                self._record_covered(np.unique(lanes), self.round)
        return visits

    def _record_covered(self, lanes: np.ndarray, at_round: int) -> None:
        """Stamp ``cover_rounds`` for lanes whose unvisited hit zero."""
        just = lanes[
            (self._unvisited[lanes] == 0) & (self.cover_rounds[lanes] < 0)
        ]
        if just.size:
            self.cover_rounds[just] = at_round
            self._all_covered = bool((self.cover_rounds >= 0).all())

    #: Rounds per reconciliation window of the bulk drivers: large
    #: enough to amortize the per-lane reduction, small enough that a
    #: replay is negligible.  ``fuse_rounds`` multiplies this.
    _WINDOW = 32

    def _advance_windowed(self, rounds: int) -> None:
        """Advance ``rounds`` rounds with windowed exact cover tracking.

        Per round only ``seen |= counts`` runs (one element-wise op);
        once per window (an *epoch* of ``_WINDOW * fuse_rounds``
        rounds) the per-lane unvisited counts are reconciled, and lanes
        that covered inside the window are replayed from the
        window-start snapshot to recover the exact cover round.  The
        replay is deterministic, touches only the few covered lanes,
        and is bounded by the window length.
        """
        epoch = self._WINDOW * self.fuse_rounds
        remaining = rounds
        while remaining > 0:
            window = min(epoch, remaining)
            if self._all_covered or not self._track_cover:
                for _ in range(remaining):
                    self._step_arith()
                return
            base_round = self.round
            snap_counts = self._counts.copy()
            snap_ptr = self._ptr.copy()
            snap_seen = self._seen.copy()
            for _ in range(window):
                self._step_arith()
                np.bitwise_or(self._seen, self._counts, out=self._seen)
            remaining -= window
            self._epochs += 1
            self._unvisited = self.n - np.count_nonzero(self._seen, axis=1)
            covered = np.flatnonzero(
                (self._unvisited == 0) & (self.cover_rounds < 0)
            )
            if covered.size:
                self._replay_cover_rounds(
                    covered, snap_counts, snap_ptr, snap_seen,
                    base_round, window,
                )
                self._all_covered = bool((self.cover_rounds >= 0).all())

    def _replay_cover_rounds(
        self,
        lanes: np.ndarray,
        snap_counts: np.ndarray,
        snap_ptr: np.ndarray,
        snap_seen: np.ndarray,
        base_round: int,
        window: int,
    ) -> None:
        """Re-run ``lanes`` from the snapshot to stamp exact cover rounds.

        Windows wider than ``_WINDOW`` (fused epochs) replay through
        the windowed driver at the base cadence first — re-running the
        covered lanes in 32-round windows costs one nested replay of
        at most ``_WINDOW`` tracked steps per lane instead of tracking
        every round of the epoch.
        """
        self._replays += int(lanes.size)
        sub = object.__new__(BatchRingKernel)
        sub.n = self.n
        sub.num_lanes = len(lanes)
        sub.round = base_round
        sub.fuse_rounds = 1
        sub._replays = 0
        sub._epochs = 0
        sub._counts = snap_counts[lanes]
        sub._ptr = snap_ptr[lanes]
        sub._next = np.empty_like(sub._counts)
        sub._fwd = np.empty_like(sub._counts)
        sub._bwd = np.empty_like(sub._counts)
        sub._track_cover = True
        sub._seen = snap_seen[lanes]
        sub._unvisited = sub.n - np.count_nonzero(sub._seen, axis=1)
        sub.cover_rounds = np.full(sub.num_lanes, -1, dtype=np.int64)
        sub._all_covered = False
        if window > self._WINDOW:
            end = base_round + window
            while not sub._all_covered and sub.round < end:
                sub._advance_windowed(min(self._WINDOW, end - sub.round))
        else:
            for _ in range(window):
                sub.step()
                if sub._all_covered:
                    break
        self.cover_rounds[lanes] = sub.cover_rounds

    def step_rounds(self, rounds: int) -> None:
        """Advance every lane ``rounds`` rounds in one fused dispatch.

        The fused bulk entry point: cover detection is downgraded to an
        epoch check at fusion boundaries (every ``_WINDOW *
        fuse_rounds`` rounds) plus an exact replay of the final epoch
        for just-covered lanes, so ``cover_rounds`` stays exact while
        per-lane bookkeeping runs ``fuse_rounds`` times less often.
        """
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        self._advance_windowed(rounds)

    def run(self, rounds: int) -> None:
        """Advance every lane ``rounds`` rounds (alias of step_rounds)."""
        self.step_rounds(rounds)

    def run_until_covered(
        self, max_rounds: int, strict: bool = True
    ) -> np.ndarray:
        """Step until every lane has covered its ring; per-lane cover rounds.

        With ``strict``, lanes still uncovered after ``max_rounds``
        raise ``RuntimeError`` (mirroring the reference engines);
        otherwise they report -1, letting sweeps record truncation
        instead of dying mid-grid.
        """
        if not self._track_cover:
            raise RuntimeError("kernel was created with track_cover=False")
        epoch = self._WINDOW * self.fuse_rounds
        while not self._all_covered and self.round < max_rounds:
            self._advance_windowed(min(epoch, max_rounds - self.round))
        if strict and not self._all_covered:
            uncovered = int((self.cover_rounds < 0).sum())
            raise RuntimeError(
                f"{uncovered} of {self.num_lanes} lanes not covered "
                f"within {max_rounds} rounds"
            )
        tel = _telemetry()
        if tel is not None:
            covered = int((self.cover_rounds >= 0).sum())
            tel.count_many({
                "ring.invocations": 1,
                "ring.lanes": self.num_lanes,
                "ring.rounds": self.round,
                "ring.lane_rounds": self.num_lanes * self.round,
                "ring.epochs": self._epochs,
                "ring.cover_replays": self._replays,
                "ring.lanes_covered": covered,
                "ring.lanes_truncated": self.num_lanes - covered,
            })
        return self.cover_rounds.copy()

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    def counts_lane(self, lane: int) -> np.ndarray:
        """Agent counts of one lane as int64 (copy)."""
        return self._counts[lane].astype(np.int64)

    def directions_lane(self, lane: int) -> list[int]:
        """Pointer directions (+1/-1) of one lane."""
        return [1 if bit else -1 for bit in self._ptr[lane]]

    def positions(self, lane: int) -> list[int]:
        """Sorted agent locations of one lane, with multiplicity."""
        return np.repeat(np.arange(self.n), self._counts[lane]).tolist()

    def unvisited_lane(self, lane: int) -> int:
        if not self._track_cover:
            raise RuntimeError("kernel was created with track_cover=False")
        return int(self.n - np.count_nonzero(self._seen[lane]))

    def state_keys(self, lanes: "list[int] | None" = None) -> dict[int, bytes]:
        """Configuration keys (pointer bits + counts) by lane index.

        Two lanes of same-dtype kernels share a key iff they are in the
        same configuration; used by the batch Brent search, which
        passes only the still-unresolved ``lanes`` so the search tail
        scales with them rather than the whole batch.
        """
        if lanes is None:
            lanes = range(self.num_lanes)
        ptr_rows = self._ptr
        count_rows = self._counts
        return {
            b: ptr_rows[b].tobytes() + count_rows[b].tobytes()
            for b in lanes
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchRingKernel(n={self.n}, lanes={self.num_lanes}, "
            f"round={self.round})"
        )


def lanes_from_configs(
    n: int, configurations: list[tuple[list[int], list[int]]]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack ``(directions, agents)`` pairs into kernel input arrays.

    Every pair describes one lane: a length-``n`` +/-1 direction list
    and agent starting nodes with multiplicity (the same arguments the
    reference :class:`repro.core.ring.RingRotorRouter` takes).
    """
    if not configurations:
        raise ValueError("at least one configuration is required")
    num_lanes = len(configurations)
    pointers = np.empty((num_lanes, n), dtype=np.int8)
    counts = np.zeros((num_lanes, n), dtype=np.int64)
    for b, (directions, agents) in enumerate(configurations):
        if len(directions) != n:
            raise ValueError(
                f"lane {b}: pointers have length {len(directions)}, "
                f"ring has {n} nodes"
            )
        pointers[b] = directions
        if not agents:
            raise ValueError(f"lane {b}: at least one agent is required")
        for a in agents:
            if not 0 <= a < n:
                raise ValueError(f"lane {b}: agent position {a} out of range")
            counts[b, a] += 1
    return pointers, counts


# ----------------------------------------------------------------------
# per-lane limit-cycle detection (stabilization + return times)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchLimitCycles:
    """Per-lane stabilization results: preperiod mu and period lam.

    Lanes whose cycle was not confirmed within the round budget (only
    possible with ``strict=False``) carry -1 in both arrays.
    """

    preperiods: np.ndarray
    periods: np.ndarray


class _Fingerprinter:
    """Random-weight uint64 fingerprints of ``(pointer, counts)`` rows.

    Configurations live in padded row buffers (:class:`_LaneBlock`)
    whose rows reinterpret as uint64 *words* — 8 packed count bytes or
    pointer bits per word.  The fingerprint is the random-weight dot
    product over those words, modulo 2^64::

        fingerprint[b] = sum_j w_ptr[j]*ptr_words[b,j]
                       + sum_j w_cnt[j]*cnt_words[b,j]    (mod 2^64)

    so Brent's "hare == snapshot" test is one ``(A,)`` equality
    instead of per-lane byte keys, and the update is one broadcasted
    multiply-sum (a matmul in wrapping uint64 arithmetic) per round
    touching 1/8 of the configuration bytes.  Equal configurations
    always share a fingerprint; unequal ones collide only when the
    weighted word difference sums to 0 mod 2^64 (~2^-56 for random
    differences under the seeded odd weights; structured worst cases
    are rarer than 2^-8), and every hit is confirmed byte-exactly by
    the callers before a lane resolves — collisions cost time, never
    correctness.  The default weights derive from
    :func:`repro.util.rng.derive_seed` (stable across processes);
    tests inject degenerate ``weights`` to force collisions.
    """

    def __init__(
        self,
        ptr_words: int,
        cnt_words: int,
        weights: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        if weights is None:
            rng = np.random.default_rng(
                derive_seed(0, "limit-cycle-fingerprint", ptr_words, cnt_words)
            )
            # Odd weights are units mod 2^64: a single differing word
            # never collides, whatever its (power-of-two) byte offset.
            self._w_packed = rng.integers(
                0, 2**64, size=cnt_words, dtype=np.uint64
            ) | np.uint64(1)
            # Equivalent split form, kept for introspection: hashing
            # z = 2·counts + ptr with w is hashing counts with 2w and
            # pointer bits with w.
            self.w_ptr = self._w_packed
            self.w_cnt = self._w_packed * np.uint64(2)
        else:
            self._w_packed = None
            self.w_ptr = np.ascontiguousarray(weights[0], dtype=np.uint64)
            self.w_cnt = np.ascontiguousarray(weights[1], dtype=np.uint64)
            if self.w_ptr.shape != (ptr_words,) or self.w_cnt.shape != (
                cnt_words,
            ):
                raise ValueError(
                    f"fingerprint weights must have shapes ({ptr_words},) "
                    f"and ({cnt_words},), got {self.w_ptr.shape} and "
                    f"{self.w_cnt.shape}"
                )

    def of(
        self,
        block: "_LaneBlock",
        out: np.ndarray | None = None,
        work: np.ndarray | None = None,
    ) -> np.ndarray:
        """``(A,)`` uint64 fingerprints of the block's configuration rows.

        Default weights take the packed fast path: the per-node state
        ``z = 2·counts + ptr`` is formed wordwise in two bitwise ops —
        counts stay below their dtype's sign bit, so the shift never
        carries across packed elements and OR-ing the pointer bit is
        exact addition — then hashed with a single wrapping matmul.
        Injected weights keep the two-matmul form over pointer and
        count words separately.  The fused Brent epochs pass ``out``
        (fingerprint destination row) and ``work`` (a word-shaped
        scratch buffer) to keep the per-round path allocation-free.
        """
        if self._w_packed is not None:
            if work is None:
                z = block.cnt_words << np.uint64(1)
            else:
                np.left_shift(block.cnt_words, np.uint64(1), out=work)
                z = work
            z |= block.ptr_words
            if out is None:
                return z @ self._w_packed
            return np.matmul(z, self._w_packed, out=out)
        fp = block.ptr_words @ self.w_ptr
        fp += block.cnt_words @ self.w_cnt
        if out is not None:
            out[...] = fp
            return out
        return fp


def _padded_columns(n: int, dtype: np.dtype) -> int:
    """Columns per row so a row is a whole number of uint64 words."""
    per_word = max(1, 8 // dtype.itemsize)
    return -(-n // per_word) * per_word


class _LaneBlock:
    """Compacted ``(A, n)`` configuration rows stepped as prefix slices.

    The limit-cycle pipeline keeps its working lanes contiguous:
    resolving lanes are either compacted out (Brent phases, unsorted)
    or sorted to the back so the active set is always ``rows[:a]`` —
    both ways a round costs element-wise ops on exactly the rows that
    still matter, with no masks, gathers or full-batch temporaries.

    Rows live in zero-padded buffers whose byte length is a multiple
    of 8, exposed twice: as ``(A, n)`` working views (``ptr``/``cnt``)
    the stepping arithmetic writes through, and as uint64 *word* views
    (``ptr_words``/``cnt_words``) that fingerprinting and byte-exact
    row comparison read — comparing packed words touches 1/8 of the
    bytes of an element-wise row comparison.  The padding is written
    once (zeros) and never touched again, so word equality is exactly
    configuration equality.
    """

    __slots__ = (
        "ptr", "cnt", "ptr_words", "cnt_words",
        "_ptr_buf", "_cnt_buf", "_nxt_buf", "_fwd", "_bwd", "_nxt",
        "_cnt_views",
    )

    def __init__(self, ptr: np.ndarray, cnt: np.ndarray) -> None:
        rows, n = cnt.shape
        padded = _padded_columns(n, cnt.dtype)
        self._ptr_buf = np.zeros((rows, padded), dtype=cnt.dtype)
        self._cnt_buf = np.zeros((rows, padded), dtype=cnt.dtype)
        self._nxt_buf = np.zeros((rows, padded), dtype=cnt.dtype)
        self._ptr_buf[:, :n] = ptr
        self._cnt_buf[:, :n] = cnt
        self._fwd = np.empty((rows, n), dtype=cnt.dtype)
        self._bwd = np.empty((rows, n), dtype=cnt.dtype)
        # The pointer buffer never changes roles, so its views are
        # permanent; the count/next buffers alternate between exactly
        # two role assignments (a buffer swap per committed round), so
        # both view triples are built once and selected by buffer
        # identity — per-round commits then re-slice nothing.
        self.ptr = self._ptr_buf[:, :n]
        self.ptr_words = self._ptr_buf.view(np.uint64)
        self._cnt_views: dict[int, tuple] = {}
        self._select_views(n)

    def _select_views(self, n: int) -> None:
        key = id(self._cnt_buf)
        cached = self._cnt_views.get(key)
        if cached is None:
            cached = (
                self._cnt_buf[:, :n],
                self._nxt_buf[:, :n],
                self._cnt_buf.view(np.uint64),
            )
            self._cnt_views[key] = cached
        self.cnt, self._nxt, self.cnt_words = cached

    @property
    def rows(self) -> int:
        return self.cnt.shape[0]

    def _arith(self, a: int) -> None:
        """Rotor arithmetic for rows ``[:a]``: arrivals into ``_nxt``,
        pointers flipped in place."""
        c, p = self.cnt[:a], self.ptr[:a]
        f, b, x = self._fwd[:a], self._bwd[:a], self._nxt[:a]
        np.add(c, p, out=f)
        np.right_shift(f, 1, out=f)
        np.subtract(c, f, out=b)
        np.bitwise_xor(p, c, out=p)
        np.bitwise_and(p, 1, out=p)
        np.add(f[:, :-2], b[:, 2:], out=x[:, 1:-1])
        np.add(f[:, -1], b[:, 1], out=x[:, 0])
        np.add(f[:, -2], b[:, 0], out=x[:, -1])

    def _commit_swap(self) -> None:
        self._cnt_buf, self._nxt_buf = self._nxt_buf, self._cnt_buf
        self._select_views(self.cnt.shape[1])

    def step_all(self) -> None:
        """One round on every row — commits by buffer swap (no copy)."""
        self._arith(self.rows)
        self._commit_swap()

    def step_prefix(self, a: int) -> None:
        """One rotor-router round on rows ``[:a]``; the rest hold still.

        Commits whichever way copies less: small prefixes copy the new
        counts back, large prefixes swap buffers and restore the
        untouched tail.
        """
        self._arith(a)
        if 2 * a >= self.rows:
            self._nxt_buf[a:] = self._cnt_buf[a:]
            self._commit_swap()
        else:
            self.cnt[:a] = self._nxt[:a]

    def take(self, rows: np.ndarray) -> "_LaneBlock":
        """A new block holding only ``rows`` (fresh compact buffers)."""
        return _LaneBlock(self.ptr[rows], self.cnt[rows])

    def rows_equal(self, other: "_LaneBlock", rows: np.ndarray) -> np.ndarray:
        """Byte-exact configuration equality per row index, via words."""
        return (self.ptr_words[rows] == other.ptr_words[rows]).all(axis=1) & (
            self.cnt_words[rows] == other.cnt_words[rows]
        ).all(axis=1)

    def halves_equal(self, pairs: int, rows: np.ndarray) -> np.ndarray:
        """Row ``r`` vs row ``r + pairs`` equality for each ``r`` in rows."""
        return (
            self.ptr_words[rows] == self.ptr_words[rows + pairs]
        ).all(axis=1) & (
            self.cnt_words[rows] == self.cnt_words[rows + pairs]
        ).all(axis=1)


def _check_compact_ratio(compact_ratio: float) -> None:
    if not 0.0 <= compact_ratio <= 1.0:
        raise ValueError(
            f"compact_ratio must be within [0, 1], got {compact_ratio}"
        )


def _advance_by_schedule(block: _LaneBlock, schedule: np.ndarray) -> None:
    """Step row ``i`` of ``block`` exactly ``schedule[i]`` rounds.

    ``schedule`` must be sorted descending: the rows still advancing
    in round ``t`` are then always the prefix ``[:a]``, and the total
    cost is ``Σ schedule[i]`` row-rounds instead of
    ``rows · max(schedule)``.
    """
    ascending = -schedule
    for t in range(int(schedule[0]) if schedule.size else 0):
        active = int(np.searchsorted(ascending, -t, side="left"))
        if active == 0:
            break
        block.step_prefix(active)


def _brent_periods(
    ptr0: np.ndarray,
    cnt0: np.ndarray,
    max_rounds: int,
    strict: bool,
    fingerprint: _Fingerprinter,
    compact_ratio: float,
    stats: dict | None = None,
    fuse_rounds: int = 1,
) -> np.ndarray:
    """Phase 1 of Brent's search: per-lane minimal periods (or -1).

    While a lane is unresolved its ``(power, lam)`` schedule is
    data-independent and shared by every lane: snapshots refresh at
    steps 2^j - 1, and steps (2^j - 1, 2^{j+1} - 1] compare against
    the snapshot at 2^j - 1.  The per-round work is therefore exactly
    one vectorized step, one fingerprint call and one ``(A,)``
    hare-vs-snapshot equality; fingerprint hits are byte-confirmed on
    the spot (both configurations are present), so a collision just
    keeps the lane searching — exactly what exact keys would have
    done.  Resolved lanes are compacted out once the live fraction
    drops to ``compact_ratio``.

    With ``fuse_rounds > 1`` the search advances in epochs of up to
    that many rounds per Python iteration: each epoch buffers one
    fingerprint row per round, defers the hare-vs-snapshot comparison
    to the epoch boundary (one broadcast equality over the buffer),
    and confirms candidate lanes by replaying the epoch from its start
    snapshot — the confirmation happens at exactly the first matching
    round, so resolved periods are identical to the per-round path.
    Epochs are clamped so snapshot refreshes still land on the
    ``(power, lam)`` schedule boundaries.
    """
    num_lanes = ptr0.shape[0]
    periods = np.full(num_lanes, -1, dtype=np.int64)
    block = _LaneBlock(ptr0, cnt0)
    snapshot = _LaneBlock(ptr0, cnt0)
    snap_fp = fingerprint.of(snapshot)
    orig = np.arange(num_lanes)
    alive = np.ones(num_lanes, dtype=bool)
    num_alive = num_lanes
    steps = 0
    snap_step = 0  # snapshots refresh when steps reaches snap_step+window
    window = 1
    while num_alive and steps < max_rounds:
        # Clamp epochs so a snapshot refresh always falls on an epoch
        # boundary (the schedule is data-independent, so the clamping
        # sequence is identical for every lane and every fuse value).
        fuse = min(fuse_rounds, snap_step + window - steps, max_rounds - steps)
        resolved_now = False
        if fuse > 1:
            epoch_ptr = block.ptr.copy()
            epoch_cnt = block.cnt.copy()
            fp_buf = np.empty((fuse, block.rows), dtype=np.uint64)
            work = np.empty_like(block.cnt_words)
            for t in range(fuse):
                block.step_all()
                fingerprint.of(block, out=fp_buf[t], work=work)
            base = steps
            steps += fuse
            if stats is not None:
                stats["epochs"] += 1
            cur_fp = fp_buf[fuse - 1].copy()
            hits = (fp_buf == snap_fp) & alive
            if hits.any():
                # Replay the epoch for just the candidate lanes to
                # confirm byte-exactly at their first matching round.
                cand = np.flatnonzero(hits.any(axis=0))
                sub = _LaneBlock(epoch_ptr[cand], epoch_cnt[cand])
                snap_sub = snapshot.take(cand)
                live = np.ones(cand.size, dtype=bool)
                for t in range(fuse):
                    sub.step_all()
                    rows_t = np.flatnonzero(hits[t, cand] & live)
                    if not rows_t.size:
                        continue
                    confirmed = rows_t[sub.rows_equal(snap_sub, rows_t)]
                    if stats is not None:
                        stats["fp_hits"] += int(rows_t.size)
                        stats["fp_confirmed"] += int(confirmed.size)
                    if confirmed.size:
                        lanes = cand[confirmed]
                        periods[orig[lanes]] = (base + t + 1) - snap_step
                        alive[lanes] = False
                        live[confirmed] = False
                        num_alive -= confirmed.size
                        resolved_now = True
                    if not live.any():
                        break
        else:
            block.step_all()
            steps += 1
            if stats is not None:
                stats["epochs"] += 1
            cur_fp = fingerprint.of(block)
            hit = cur_fp == snap_fp
            hit &= alive
            if hit.any():
                rows = np.flatnonzero(hit)
                confirmed = rows[block.rows_equal(snapshot, rows)]
                if stats is not None:
                    stats["fp_hits"] += int(rows.size)
                    stats["fp_confirmed"] += int(confirmed.size)
                if confirmed.size:
                    periods[orig[confirmed]] = steps - snap_step
                    alive[confirmed] = False
                    num_alive -= confirmed.size
                    resolved_now = True
        if steps == snap_step + window and num_alive:
            # Window complete: every live lane refreshes its snapshot
            # to the current configuration (dead rows refresh too —
            # harmless, their results are already extracted).
            np.copyto(snapshot._ptr_buf, block._ptr_buf)
            np.copyto(snapshot._cnt_buf, block._cnt_buf)
            snap_fp = cur_fp
            snap_step = steps
            window *= 2
        if (
            resolved_now
            and 0 < num_alive
            and num_alive <= compact_ratio * alive.size
        ):
            keep = np.flatnonzero(alive)
            block = block.take(keep)
            snapshot = snapshot.take(keep)
            snap_fp = snap_fp[keep]
            orig = orig[keep]
            alive = np.ones(num_alive, dtype=bool)
            if stats is not None:
                stats["compactions"] += 1
    if stats is not None:
        stats["rounds"] += steps
    if num_alive and strict:
        raise RuntimeError(
            f"{num_alive} lanes have no limit cycle confirmed "
            f"within {max_rounds} rounds"
        )
    return periods


def _brent_preperiods(
    ptr0: np.ndarray,
    cnt0: np.ndarray,
    periods: np.ndarray,
    max_rounds: int,
    fingerprint: _Fingerprinter,
    compact_ratio: float,
    stats: dict | None = None,
) -> np.ndarray:
    """Phase 2: preperiods via synchronized tortoise/hare walkers.

    The hare starts one full period ahead per lane (a sorted-prefix
    advance costing ``Σ period`` row-rounds); then tortoise and hare
    rows are stacked into ONE block — rows ``[:A]`` tortoise, ``[A:]``
    hare — so each round is a single vectorized step, a single
    fingerprint call and one ``(A,)`` equality between the halves.
    Fingerprint matches are byte-confirmed on the spot; matched lanes
    stay matched under further steps (determinism), so they are
    stepped harmlessly until compaction drops them.
    """
    num_lanes = ptr0.shape[0]
    preperiods = np.full(num_lanes, -1, dtype=np.int64)
    resolved = np.flatnonzero(periods > 0)
    if resolved.size == 0:
        return preperiods
    order = resolved[np.argsort(-periods[resolved], kind="stable")]
    hare = _LaneBlock(ptr0[order], cnt0[order])
    _advance_by_schedule(hare, periods[order])
    block = _LaneBlock(
        np.concatenate([ptr0[order], hare.ptr]),
        np.concatenate([cnt0[order], hare.cnt]),
    )

    orig = order.copy()
    pairs = order.size
    alive = np.ones(pairs, dtype=bool)
    num_alive = pairs
    rounds = 0
    while True:
        fps = fingerprint.of(block)
        cand = fps[:pairs] == fps[pairs:]
        cand &= alive
        if cand.any():
            rows = np.flatnonzero(cand)
            confirmed = rows[block.halves_equal(pairs, rows)]
            if stats is not None:
                stats["fp_hits"] += int(rows.size)
                stats["fp_confirmed"] += int(confirmed.size)
            if confirmed.size:
                preperiods[orig[confirmed]] = rounds
                alive[confirmed] = False
                num_alive -= confirmed.size
                if num_alive and num_alive <= compact_ratio * alive.size:
                    keep = np.flatnonzero(alive)
                    block = block.take(np.concatenate([keep, keep + pairs]))
                    orig = orig[keep]
                    pairs = keep.size
                    alive = np.ones(pairs, dtype=bool)
                    if stats is not None:
                        stats["compactions"] += 1
        if not num_alive:
            if stats is not None:
                stats["rounds"] += rounds
            break
        if rounds >= max_rounds:
            raise RuntimeError(
                f"preperiod exceeds {max_rounds} rounds (inconsistent state)"
            )
        block.step_all()
        rounds += 1
    return preperiods


def batch_limit_cycles(
    n: int,
    pointers: np.ndarray,
    counts: np.ndarray,
    max_rounds: int,
    strict: bool = True,
    *,
    fuse_rounds: int = 1,
    compact_ratio: float = DEFAULT_COMPACT_RATIO,
    _fingerprint_weights: tuple[np.ndarray, np.ndarray] | None = None,
) -> BatchLimitCycles:
    """Brent's cycle search over every lane, array-native end to end.

    Stepping, the ``(power, lam)`` schedule, snapshot refreshes and
    the hare-vs-snapshot comparison are all vectorized over the
    unresolved lanes; configurations are compared through uint64
    fingerprints with byte-exact confirmation of every hit, so results
    match :func:`repro.core.limit.find_limit_cycle` exactly (both
    compute the true minimal period and preperiod).

    ``fuse_rounds`` sets the phase-1 epoch length (rounds advanced per
    Python iteration, with deferred comparison and replay-confirmed
    hits — see :func:`_brent_periods`); phase 2 stays per-round, its
    comparison is between two halves of the same moving block so there
    is no stationary snapshot to defer against.  ``compact_ratio``
    tunes when resolved lanes are compacted out of the working arrays
    (see :data:`DEFAULT_COMPACT_RATIO`); ``_fingerprint_weights`` lets
    tests inject degenerate weights to force fingerprint collisions.

    With ``strict``, exhausting ``max_rounds`` raises ``RuntimeError``
    (mirroring the reference); otherwise unresolved lanes report -1,
    letting sweeps record truncation instead of dying mid-grid.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be positive, got {max_rounds}")
    if fuse_rounds < 1:
        raise ValueError(
            f"fuse_rounds must be at least 1, got {fuse_rounds}"
        )
    _check_compact_ratio(compact_ratio)
    # The kernel constructor owns validation and dtype selection; its
    # typed arrays seed both Brent phases.
    seed = BatchRingKernel(n, pointers, counts, track_cover=False)
    words = _padded_columns(n, seed._counts.dtype) * (
        seed._counts.dtype.itemsize
    ) // 8
    fingerprint = _Fingerprinter(words, words, weights=_fingerprint_weights)
    tel = _telemetry()
    stats = (
        None
        if tel is None
        else {
            "rounds": 0, "epochs": 0, "fp_hits": 0, "fp_confirmed": 0,
            "compactions": 0,
        }
    )
    periods = _brent_periods(
        seed._ptr, seed._counts, max_rounds, strict, fingerprint,
        compact_ratio, stats, fuse_rounds,
    )
    preperiods = _brent_preperiods(
        seed._ptr, seed._counts, periods, max_rounds, fingerprint,
        compact_ratio, stats,
    )
    if tel is not None:
        resolved = int((periods > 0).sum())
        tel.count_many({
            "limit.invocations": 1,
            "limit.lanes": seed.num_lanes,
            "limit.rounds": stats["rounds"],
            "limit.epochs": stats["epochs"],
            "limit.fp_hits": stats["fp_hits"],
            "limit.fp_confirmed": stats["fp_confirmed"],
            "limit.fp_collisions": stats["fp_hits"] - stats["fp_confirmed"],
            "limit.compactions": stats["compactions"],
            "limit.lanes_resolved": resolved,
            "limit.lanes_truncated": seed.num_lanes - resolved,
        })
    return BatchLimitCycles(preperiods=preperiods, periods=periods)


def batch_return_gaps(
    n: int,
    pointers: np.ndarray,
    counts: np.ndarray,
    cycles: BatchLimitCycles,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane (worst, best) visit gaps within one limit-cycle period.

    Advances each lane to its cycle start, then scans exactly one
    period per lane recording per-node gaps between consecutive visits,
    including the wrap-around gap (last visit -> first visit of the
    next repetition), exactly like
    :func:`repro.core.limit.return_time_exact`.

    Both the preperiod advance and the period scan sort lanes by
    schedule length, so the active set is a contiguous prefix: lanes
    whose period ended are dropped from the ``first``/``last``/
    ``max_gap`` updates entirely (the per-round temporaries shrink
    with the active prefix) instead of being masked at full width.
    """
    seed = BatchRingKernel(n, pointers, counts, track_cover=False)
    num_lanes = seed.num_lanes
    preperiods, periods = cycles.preperiods, cycles.periods
    if np.any(periods < 1):
        raise ValueError(
            "every lane needs a confirmed cycle; slice unresolved "
            "(period -1) lanes out before computing gaps"
        )
    # Advance to each lane's cycle start (preperiod-descending prefix).
    order_pre = np.argsort(-preperiods, kind="stable")
    block = _LaneBlock(seed._ptr[order_pre], seed._counts[order_pre])
    _advance_by_schedule(block, preperiods[order_pre])

    # Re-sort rows by period so the scan's active set is a prefix too.
    order = np.argsort(-periods, kind="stable")
    position = np.empty(num_lanes, dtype=np.int64)
    position[order_pre] = np.arange(num_lanes)
    block = block.take(position[order])
    schedule = periods[order]

    # Use the narrowest stamp dtype the longest period fits in — the
    # scan's cost is memory traffic over these arrays; a period long
    # enough to overflow int64 could never be scanned anyway.
    longest = int(schedule[0])
    if longest < 2**15 - 1:
        stamp = np.int16
    elif longest < 2**31 - 1:
        stamp = np.int32
    else:
        stamp = np.int64
    first = np.full((num_lanes, n), -1, dtype=stamp)
    last = np.full((num_lanes, n), -1, dtype=stamp)
    max_gap = np.zeros((num_lanes, n), dtype=stamp)
    visits = np.empty((num_lanes, n), dtype=bool)
    mask = np.empty((num_lanes, n), dtype=bool)
    gap = np.empty((num_lanes, n), dtype=stamp)
    ascending = -schedule
    first_open = 0  # lanes [first_open:active] still have unset `first`
    for t in range(int(schedule[0])):
        active = int(np.searchsorted(ascending, -t, side="left"))
        if active == 0:
            break
        block.step_prefix(active)
        # All updates run in place on the active prefix — no per-round
        # allocations, no full-batch temporaries.  The max_gap update
        # is unmasked on purpose: for a node visited at t the value
        # t - last is exactly the gap being closed; between visits the
        # committed values only grow toward that same closing value;
        # and after the final visit they stay strictly below the
        # wrap-around term (t - last < first + period - last, as
        # first >= 0 and t < period), which the maximum with ``wrap``
        # takes anyway.  Never-visited nodes are overwritten with inf.
        vis, g = visits[:active], gap[:active]
        last_a = last[:active]
        np.not_equal(block.cnt[:active], 0, out=vis)
        np.subtract(t, last_a, out=g, casting="unsafe")
        np.maximum(max_gap[:active], g, out=max_gap[:active])
        if first_open < active:
            # `first` needs per-node stamping only until every node of
            # a lane has been seen once (within ~n/k rounds on a ring,
            # far sooner than the period); finished lanes are skipped
            # wholesale via the sorted prefix.
            first_a = first[first_open:active]
            m = mask[first_open:active]
            np.less(first_a, 0, out=m)
            m &= visits[first_open:active]
            np.copyto(first_a, t, where=m)
            while first_open < active and not bool(
                (first[first_open] < 0).any()
            ):
                first_open += 1
        np.copyto(last_a, t, where=vis)

    wrap = first.astype(np.int64) + schedule[:, np.newaxis] - last
    gaps = np.maximum(max_gap, wrap).astype(float)
    gaps[first < 0] = np.inf  # never visited in-cycle (impossible on a ring)
    worst = np.empty(num_lanes)
    best = np.empty(num_lanes)
    worst[order] = gaps.max(axis=1)
    best[order] = gaps.min(axis=1)
    tel = _telemetry()
    if tel is not None:
        tel.count_many({
            "gaps.invocations": 1,
            "gaps.lanes": num_lanes,
            "gaps.rounds": longest,
            # Row-rounds actually stepped: the preperiod advance plus
            # one period per lane, both on shrinking sorted prefixes.
            "gaps.lane_rounds": int(preperiods.sum() + periods.sum()),
        })
    return worst, best
