"""Parallel sweep executor with an on-disk JSON result cache.

``run_sweep`` turns a :class:`repro.sweep.spec.ScenarioSpec` into
results in three stages:

1. **cache probe** — every expanded cell is looked up in the cache
   directory by its ``config_hash``; hits are served without any
   simulation, which is what makes repeated and resumed sweeps free;
2. **batch planning** — cache misses are grouped by ring size and
   chunked; each chunk becomes one :class:`repro.sweep.batch_ring.
   BatchRingKernel` invocation stepping all of the chunk's lanes with
   shared vectorized rounds;
3. **execution** — chunks run in-process (``jobs <= 1``) or across a
   ``multiprocessing`` pool, with per-chunk progress reporting; fresh
   results are written back to the cache as they arrive.

Cache entries are one JSON file per cell (``<hash prefix>/<hash>.json``)
holding the cell's identity plus its metrics, so a cache directory is
portable, inspectable and safely shared between scenarios: any two
specs containing the same cell exchange results through it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.sweep.batch_ring import (
    BatchLimitCycles,
    BatchRingKernel,
    batch_limit_cycles,
    batch_return_gaps,
    lanes_from_configs,
)
from repro.sweep.spec import ScenarioSpec, SweepConfig
from repro.util.tables import Table

#: Lanes per kernel invocation: large enough to amortize numpy
#: dispatch, small enough to keep many chunks in flight per worker.
DEFAULT_CHUNK_LANES = 64

ProgressFn = Callable[[int, int], None]


class ResultCache:
    """One JSON file per sweep cell, keyed by its config hash."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def path(self, config_hash: str) -> str:
        return os.path.join(
            self.directory, config_hash[:2], f"{config_hash}.json"
        )

    def get(self, config: SweepConfig) -> dict | None:
        """The cached metrics for ``config``, or None on a miss.

        Unreadable or mismatched entries count as misses (and are
        recomputed) rather than failing the sweep.
        """
        path = self.path(config.config_hash)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("config") != config.identity():
            return None
        metrics = entry.get("metrics")
        return metrics if isinstance(metrics, dict) else None

    def put(self, config: SweepConfig, metrics: dict) -> str:
        path = self.path(config.config_hash)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"config": config.identity(), "metrics": metrics}
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)  # atomic: concurrent writers agree anyway
        return path

    def __len__(self) -> int:
        total = 0
        for _, _, files in os.walk(self.directory):
            total += sum(name.endswith(".json") for name in files)
        return total


@dataclass(frozen=True)
class ConfigResult:
    """Metrics of one sweep cell, with provenance."""

    config: SweepConfig
    metrics: dict
    cached: bool


@dataclass
class SweepResult:
    """All cell results of one sweep run, in spec expansion order."""

    spec: ScenarioSpec
    results: list[ConfigResult]
    elapsed: float
    cache_hits: int = 0
    cache_misses: int = 0

    _METRIC_COLUMNS = (
        ("cover", "d"),
        ("preperiod", "d"),
        ("period", "d"),
        ("worst_gap", ".0f"),
        ("best_gap", ".0f"),
    )

    def table(self) -> Table:
        """Render every cell as one row (generic sweep layout)."""
        present = [
            (name, fmt)
            for name, fmt in self._METRIC_COLUMNS
            if any(name in r.metrics for r in self.results)
        ]
        table = Table(
            columns=["n", "k", "placement", "pointers", "seed"]
            + [name for name, _ in present]
            + ["cached"],
            caption=f"sweep '{self.spec.name}': "
            f"{len(self.results)} configurations",
            formats=["d", "d", None, None, "d"]
            + [fmt for _, fmt in present]
            + [None],
        )
        for result in self.results:
            config = result.config
            table.add_row(
                config.n,
                config.k,
                config.placement,
                config.pointer,
                config.seed,
                *[result.metrics.get(name) for name, _ in present],
                "yes" if result.cached else "no",
            )
        return table


def compute_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Run one chunk of same-``n`` cells through the batch kernel.

    ``payload`` is a plain dict (picklable for worker processes) with
    the ring size, round budget, metric list and the cells' dict forms.
    Returns ``(config_hash, metrics)`` pairs in chunk order.
    """
    n = payload["n"]
    max_rounds = payload["max_rounds"]
    metrics: Sequence[str] = payload["metrics"]
    configs = [SweepConfig.from_dict(data) for data in payload["configs"]]
    lanes = [config.build() for config in configs]
    pointers, counts = lanes_from_configs(
        n, [(directions, agents) for agents, directions in lanes]
    )

    out: list[dict] = [{} for _ in configs]
    if "cover" in metrics:
        kernel = BatchRingKernel(n, pointers, counts)
        covers = kernel.run_until_covered(max_rounds, strict=False)
        for b, cover in enumerate(covers):
            out[b]["cover"] = int(cover) if cover >= 0 else None
    if "stabilization" in metrics or "return" in metrics:
        cycles = batch_limit_cycles(
            n, pointers, counts, max_rounds, strict=False
        )
        resolved = cycles.periods > 0
        if "stabilization" in metrics:
            for b in range(len(configs)):
                confirmed = bool(resolved[b])
                out[b]["preperiod"] = (
                    int(cycles.preperiods[b]) if confirmed else None
                )
                out[b]["period"] = (
                    int(cycles.periods[b]) if confirmed else None
                )
        if "return" in metrics:
            for b in range(len(configs)):
                out[b]["worst_gap"] = None
                out[b]["best_gap"] = None
            lanes = np.flatnonzero(resolved)
            if lanes.size:
                worst, best = batch_return_gaps(
                    n,
                    pointers[lanes],
                    counts[lanes],
                    BatchLimitCycles(
                        preperiods=cycles.preperiods[lanes],
                        periods=cycles.periods[lanes],
                    ),
                )
                for i, b in enumerate(lanes):
                    out[b]["worst_gap"] = float(worst[i])
                    out[b]["best_gap"] = float(best[i])
    return [
        (config.config_hash, metrics_out)
        for config, metrics_out in zip(configs, out)
    ]


def _plan_chunks(
    misses: list[SweepConfig], chunk_lanes: int
) -> list[dict]:
    """Group cache misses by (n, budget) and slice into chunk payloads."""
    groups: dict[tuple[int, int], list[SweepConfig]] = {}
    for config in misses:
        groups.setdefault((config.n, config.max_rounds), []).append(config)
    payloads = []
    for (n, max_rounds), members in sorted(groups.items()):
        for start in range(0, len(members), chunk_lanes):
            chunk = members[start:start + chunk_lanes]
            payloads.append(
                {
                    "n": n,
                    "max_rounds": max_rounds,
                    "metrics": list(chunk[0].metrics),
                    "configs": [config.to_dict() for config in chunk],
                }
            )
    return payloads


def stderr_progress(done: int, total: int) -> None:
    """Default progress reporter: one status line on stderr."""
    end = "\n" if done == total else "\r"
    print(f"sweep: {done}/{total} configurations", file=sys.stderr, end=end)


def run_sweep(
    spec: ScenarioSpec,
    jobs: int = 1,
    cache_dir: str | None = None,
    progress: ProgressFn | None = None,
    chunk_lanes: int = DEFAULT_CHUNK_LANES,
) -> SweepResult:
    """Execute a sweep: cache probe, then parallel batched simulation.

    ``jobs <= 1`` runs chunks in-process; otherwise a multiprocessing
    pool of ``jobs`` workers consumes them.  ``progress`` (if given) is
    called with ``(done, total)`` configuration counts as results
    arrive, cache hits included.
    """
    if jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if chunk_lanes < 1:
        raise ValueError(f"chunk_lanes must be positive, got {chunk_lanes}")
    started = time.perf_counter()
    configs = spec.configs()
    total = len(configs)
    cache = ResultCache(cache_dir) if cache_dir else None

    metrics_by_hash: dict[str, dict] = {}
    cached_hashes: set[str] = set()
    misses: list[SweepConfig] = []
    for config in configs:  # spec expansion guarantees unique cells
        entry = cache.get(config) if cache is not None else None
        if entry is not None:
            metrics_by_hash[config.config_hash] = entry
            cached_hashes.add(config.config_hash)
        else:
            misses.append(config)
    done = total - len(misses)
    if progress:
        progress(done, total)

    by_hash = {config.config_hash: config for config in misses}
    payloads = _plan_chunks(misses, chunk_lanes)
    if payloads:
        if jobs > 1:
            with multiprocessing.Pool(processes=jobs) as pool:
                chunk_results = pool.imap_unordered(compute_chunk, payloads)
                done = _collect(
                    chunk_results, metrics_by_hash, by_hash, cache,
                    done, total, progress,
                )
        else:
            done = _collect(
                map(compute_chunk, payloads), metrics_by_hash, by_hash,
                cache, done, total, progress,
            )

    results = [
        ConfigResult(
            config=config,
            metrics=metrics_by_hash[config.config_hash],
            cached=config.config_hash in cached_hashes,
        )
        for config in configs
    ]
    hits = sum(result.cached for result in results)
    return SweepResult(
        spec=spec,
        results=results,
        elapsed=time.perf_counter() - started,
        cache_hits=hits,
        cache_misses=len(results) - hits,
    )


def _collect(
    chunk_results,
    metrics_by_hash: dict[str, dict],
    by_hash: dict[str, SweepConfig],
    cache: ResultCache | None,
    done: int,
    total: int,
    progress: ProgressFn | None,
) -> int:
    for pairs in chunk_results:
        for config_hash, metrics in pairs:
            metrics_by_hash[config_hash] = metrics
            if cache is not None:
                cache.put(by_hash[config_hash], metrics)
            done += 1
        if progress:
            progress(done, total)
    return done
