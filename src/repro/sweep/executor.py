"""Parallel sweep executor over a pluggable, batched result store.

``run_sweep`` turns a :class:`repro.sweep.spec.ScenarioSpec` into
results in three stages:

1. **cache probe** — the whole deduplicated cell list is probed in one
   :meth:`repro.sweep.store.CacheStore.lookup_many` call; hits are
   served without any simulation, which is what makes repeated and
   resumed sweeps free;
2. **batch planning** — cache misses are grouped by model, ring size,
   round budget and metric set, then chunked; a rotor chunk becomes
   one :class:`repro.sweep.batch_ring.BatchRingKernel` invocation
   stepping all of the chunk's lanes with shared vectorized rounds,
   a walk chunk one :class:`repro.sweep.batch_walk.BatchRingWalks`
   invocation whose lanes are the cells' seeded repetitions (walk
   chunks are additionally capped by total walker count, since the
   block buffers scale with ``Σ k·repetitions``), and a general-graph
   chunk one :class:`repro.sweep.batch_general.BatchGeneralKernel`
   invocation over a digest-keyed graph table (graphs serialize once
   per chunk, lanes of *different* graphs share rounds);
3. **execution** — chunks run in-process (``jobs <= 1``) or across a
   ``multiprocessing`` pool under a supervising dispatcher
   (:class:`_Supervisor`), with per-chunk progress reporting; each
   chunk's results are written back in one batched
   :meth:`~repro.sweep.store.CacheStore.put_many` call.

The execution stage is **fault-tolerant**: chunks are tracked
individually with per-chunk deadlines (``chunk_timeout``), failed
attempts are retried with exponential backoff (``max_retries``), a
chunk that keeps failing is bisected until the poison cell is
isolated and quarantined, worker crashes and hung workers trigger a
pool restart, and a pool that cannot be rebuilt degrades to
in-process serial execution of the remaining chunks.  A plan always
finishes: ``run_cells`` returns a structured :class:`FailureReport`
(quarantined cell hashes plus exception summaries) instead of
propagating the first worker exception.  Probe-time ``corrupt``
statuses self-heal — the bad rows are quarantined through
:meth:`~repro.sweep.store.CacheStore.quarantine_many` and recomputed.
All of it is reproducible: :mod:`repro.sweep.faults` injects seeded,
deterministic faults (worker crashes, poison cells, delays, store-row
corruption) for tests, benchmarks and the CI chaos job, and none of
the robustness knobs joins any cache identity.

The store itself is pluggable (:mod:`repro.sweep.store`): a plain
``cache_dir`` path selects the portable one-JSON-file-per-cell tree,
a ``sqlite://<dir>`` spec the sharded SQLite store whose batched
probes and transactional writes keep warm million-cell sweeps out of
syscall territory.  Reports are bit-identical whichever backend served
them.  :class:`ResultCache` remains as the JSON backend's historical
name.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence, TextIO

import numpy as np

from repro import obs
from repro.sweep.batch_ring import (
    DEFAULT_COMPACT_RATIO,
    BatchLimitCycles,
    BatchRingKernel,
    _check_compact_ratio,
    batch_limit_cycles,
    batch_return_gaps,
    lanes_from_configs,
)
from repro.sweep import shm
from repro.sweep.batch_walk import BatchRingWalks, walk_lanes_from_cells
from repro.sweep.faults import (
    FaultPlan,
    active_policy,
    apply_chunk_faults,
    corrupt_rows_in_store,
)
from repro.sweep.cells import cell_from_dict
from repro.sweep.spec import ScenarioSpec, SweepConfig
from repro.sweep.store import CacheStore, JsonTreeStore, open_store
from repro.util.stats import normal_ci, summarize
from repro.util.tables import Table
from repro.util.timing import Stopwatch

#: Lanes per kernel invocation: large enough to amortize numpy
#: dispatch, small enough to keep many chunks in flight per worker.
DEFAULT_CHUNK_LANES = 64

#: Walker cap per walk chunk: the walk kernel's block buffers are
#: ``(block_size, Σ k·repetitions)`` int64 matrices, so chunks are
#: additionally split once their total walker count crosses this
#: (4096 walkers ≈ 32 MiB per 1024-round block buffer).
DEFAULT_WALK_CHUNK_WALKERS = 4096

#: Redispatches a failing chunk earns before bisection/quarantine.
DEFAULT_MAX_RETRIES = 2

#: Base of the exponential retry backoff, seconds: attempt ``a`` waits
#: ``retry_backoff * 2**(a - 1)`` before redispatching.
DEFAULT_RETRY_BACKOFF = 0.1

def _prefer_serial_covers(n: int, configs: Sequence) -> bool:
    """Whether a cover-only rotor chunk should skip the batch kernel.

    A kernel round sweeps the full ``(B, n)`` configuration matrix; a
    serial dict-engine round touches only the occupied nodes, O(k).
    Their per-round work ratio is therefore ``Σ k_i`` (all lanes'
    agents) against ``B·n``, and with the two engines' measured
    per-element constants the crossover lands almost exactly at
    ``Σ k_i ≈ n`` for n in 256..1024 (sparse-agent grids — few lanes
    or small k at large n — favor the serial engine; dense grids the
    kernel).  Both paths are pinned bit-identical by the equivalence
    suites; this chooses scheduling, never semantics.
    """
    return sum(config.k for config in configs) < n

ProgressFn = Callable[[int, int], None]

#: The JSON tree store under its historical executor name: existing
#: imports (and cache directories) keep working unchanged.
ResultCache = JsonTreeStore


@dataclass
class FailureReport:
    """Structured failure outcome of one ``run_cells`` plan.

    A fault-tolerant plan always runs to completion; this report says
    what it took.  ``quarantined`` maps each abandoned cell's
    ``config_hash`` to a one-line exception summary — those hashes are
    the only ones missing from ``metrics_by_hash``.  The counters
    mirror the ``executor.*`` telemetry: failure-driven redispatches
    (``retries``), chunk deadlines exceeded (``timeouts``), chunks
    that exhausted their retries and went to bisection
    (``chunk_failures``), pool teardown/rebuilds after worker death or
    a hung chunk (``pool_restarts``), and degradations to in-process
    serial execution (``serial_fallbacks``).
    """

    quarantined: dict[str, str] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    chunk_failures: int = 0
    pool_restarts: int = 0
    serial_fallbacks: int = 0

    @property
    def failed(self) -> int:
        """Number of quarantined cells (the ``failed=Z`` accounting)."""
        return len(self.quarantined)

    @property
    def clean(self) -> bool:
        """Whether the plan ran without any failure handling at all."""
        return not (
            self.quarantined
            or self.retries
            or self.timeouts
            or self.chunk_failures
            or self.pool_restarts
            or self.serial_fallbacks
        )

    def counters(self) -> dict[str, int]:
        """The nonzero ``executor.*`` counter increments to emit."""
        values = {
            "executor.retries": self.retries,
            "executor.timeouts": self.timeouts,
            "executor.chunk_failures": self.chunk_failures,
            "executor.quarantined_cells": self.failed,
            "executor.pool_restarts": self.pool_restarts,
            "executor.serial_fallbacks": self.serial_fallbacks,
        }
        return {name: value for name, value in values.items() if value}

    def summary_lines(self) -> list[str]:
        """One human-readable line per quarantined cell, hash-sorted."""
        return [
            f"quarantined {config_hash[:12]}: {summary}"
            for config_hash, summary in sorted(self.quarantined.items())
        ]


@dataclass(frozen=True)
class ConfigResult:
    """Metrics of one sweep cell, with provenance.

    A quarantined cell still yields a result row — ``failed=True``
    with empty metrics — so sweep tables keep one row per requested
    configuration no matter what the execution layer survived.
    """

    config: SweepConfig
    metrics: dict
    cached: bool
    failed: bool = False


@dataclass
class SweepResult:
    """All cell results of one sweep run, in spec expansion order."""

    spec: ScenarioSpec
    results: list[ConfigResult]
    elapsed: float
    cache_hits: int = 0
    cache_misses: int = 0
    failed: int = 0
    failure_report: FailureReport | None = None

    _METRIC_COLUMNS = (
        ("cover", ".1f"),
        ("cover_ci_low", ".1f"),
        ("cover_ci_high", ".1f"),
        ("cover_reps", "d"),
        ("preperiod", "d"),
        ("period", "d"),
        ("worst_gap", ".0f"),
        ("best_gap", ".0f"),
    )

    def table(self) -> Table:
        """Render every cell as one row (generic sweep layout).

        Stochastic (walk) cells report their repetition mean in the
        ``cover`` column plus the CI bounds and repetition count; the
        CI columns only appear when some cell recorded them.
        """
        present = [
            (name, fmt)
            for name, fmt in self._METRIC_COLUMNS
            if any(name in r.metrics for r in self.results)
        ]
        table = Table(
            columns=["model", "n", "k", "placement", "pointers", "seed"]
            + [name for name, _ in present]
            + ["cached"],
            caption=f"sweep '{self.spec.name}': "
            f"{len(self.results)} configurations",
            formats=[None, "d", "d", None, None, "d"]
            + [fmt for _, fmt in present]
            + [None],
        )
        for result in self.results:
            config = result.config
            table.add_row(
                config.model,
                config.n,
                config.k,
                config.placement,
                config.pointer,
                config.seed,
                *[result.metrics.get(name) for name, _ in present],
                "failed" if result.failed else
                ("yes" if result.cached else "no"),
            )
        return table


def compute_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Run one chunk of same-model, same-``n`` cells through a kernel.

    ``payload`` is a plain dict (picklable for worker processes) with
    the model, ring size, round budget, metric list and the cells'
    dict forms.  Returns ``(config_hash, metrics)`` pairs in chunk
    order.

    When the payload carries a ``trace`` stanza (added by
    :func:`run_cells` under an active :func:`repro.obs.trace_session`),
    the chunk runs under a fresh worker telemetry context whose spans
    and kernel counters land in this process's shard file.

    A ``faults`` stanza (attached only when a
    :class:`repro.sweep.faults.FaultPlan` is active) fires its injected
    failures here, before any telemetry or simulation work — exactly
    where a real crash/hang/poison cell would strike.
    """
    stanza = payload.get("faults")
    if stanza is not None:
        apply_chunk_faults(stanza, payload.get("cell_hashes", ()))
    trace = payload.get("trace")
    if trace is not None:
        return obs.traced_chunk(trace, _dispatch_chunk, payload)
    return _dispatch_chunk(payload)


def _dispatch_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Model dispatch of :func:`compute_chunk` (sans telemetry)."""
    if payload["model"] == "walk":
        if "gaps" in payload["metrics"]:
            return _compute_gaps_chunk(payload)
        return _compute_walk_chunk(payload)
    if payload["model"] == "rotor-general":
        return _compute_general_chunk(payload)
    return _compute_rotor_chunk(payload)


def _compute_rotor_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Rotor cells: one deterministic lane each, batch ring kernel.

    Sparse cover-only chunks take the serial dict-engine path instead
    — identical results, better constants when agents are sparse (see
    :func:`_prefer_serial_covers`).
    """
    n = payload["n"]
    max_rounds = payload["max_rounds"]
    metrics: Sequence[str] = payload["metrics"]
    compact_ratio = payload.get("compact_ratio", DEFAULT_COMPACT_RATIO)
    fuse_rounds = payload.get("fuse_rounds") or 1
    configs = [cell_from_dict(data) for data in payload["configs"]]
    lanes = payload.get("lanes")
    if lanes is not None:
        # Parent-packed shared-memory slabs: the lane arrays were built
        # once in the dispatching process; attach read-only views (the
        # kernel constructor dtype-copies them into its own buffers).
        pointers = shm.resolve(lanes["pointers"])
        counts = shm.resolve(lanes["counts"])
    else:
        if list(metrics) == ["cover"] and _prefer_serial_covers(n, configs):
            return _compute_rotor_covers_serial(n, max_rounds, configs)
        built = [config.build() for config in configs]
        pointers, counts = lanes_from_configs(
            n, [(directions, agents) for agents, directions in built]
        )

    out: list[dict] = [{} for _ in configs]
    if "cover" in metrics:
        kernel = BatchRingKernel(n, pointers, counts, fuse_rounds=fuse_rounds)
        covers = kernel.run_until_covered(max_rounds, strict=False)
        for b, cover in enumerate(covers):
            out[b]["cover"] = int(cover) if cover >= 0 else None
    if "stabilization" in metrics or "return" in metrics:
        cycles = batch_limit_cycles(
            n, pointers, counts, max_rounds, strict=False,
            fuse_rounds=fuse_rounds, compact_ratio=compact_ratio,
        )
        resolved = cycles.periods > 0
        if "stabilization" in metrics:
            for b in range(len(configs)):
                confirmed = bool(resolved[b])
                out[b]["preperiod"] = (
                    int(cycles.preperiods[b]) if confirmed else None
                )
                out[b]["period"] = (
                    int(cycles.periods[b]) if confirmed else None
                )
        if "return" in metrics:
            for b in range(len(configs)):
                out[b]["worst_gap"] = None
                out[b]["best_gap"] = None
            resolved_lanes = np.flatnonzero(resolved)
            if resolved_lanes.size:
                worst, best = batch_return_gaps(
                    n,
                    pointers[resolved_lanes],
                    counts[resolved_lanes],
                    BatchLimitCycles(
                        preperiods=cycles.preperiods[resolved_lanes],
                        periods=cycles.periods[resolved_lanes],
                    ),
                )
                for i, b in enumerate(resolved_lanes):
                    out[b]["worst_gap"] = float(worst[i])
                    out[b]["best_gap"] = float(best[i])
    return [
        (config.config_hash, metrics_out)
        for config, metrics_out in zip(configs, out)
    ]


def _compute_walk_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Walk cells: fan repetitions into lanes, aggregate mean/CI back.

    Each cell's repetitions run on the derived seeds of
    :meth:`repro.sweep.spec.SweepConfig.rep_seeds`, seed-for-seed
    identical to standalone :class:`repro.randomwalk.ring_walk.
    RingRandomWalks` runs.  A cell whose budget truncates any
    repetition reports ``cover=None`` (the mean of a censored sample
    would be biased); the repetition count and truncation count are
    always recorded.
    """
    n = payload["n"]
    max_rounds = payload["max_rounds"]
    fuse_rounds = payload.get("fuse_rounds")
    configs = [cell_from_dict(data) for data in payload["configs"]]
    lanes, slices = walk_lanes_from_cells(
        [(config.build_agents(), config.rep_seeds()) for config in configs]
    )
    walks = (
        BatchRingWalks(n, lanes, fuse_rounds=fuse_rounds)
        if fuse_rounds
        else BatchRingWalks(n, lanes)  # kernel default (tuned)
    )
    covers = walks.run_until_covered(max_rounds, strict=False)
    out: list[tuple[str, dict]] = []
    for config, (start, stop) in zip(configs, slices):
        samples = covers[start:stop]
        truncated = int(np.count_nonzero(samples < 0))
        metrics: dict = {
            "cover_reps": int(stop - start),
            "cover_truncated": truncated,
        }
        if getattr(config, "record_samples", False):
            # Explicit experiment cells keep the raw per-repetition
            # samples so callers can rebuild the exact serial
            # CoverEstimate (mean, std, CI and all).
            metrics["cover_samples"] = [int(value) for value in samples]
        if truncated:
            metrics.update(
                cover=None, cover_std=None,
                cover_ci_low=None, cover_ci_high=None,
            )
        else:
            values = [float(value) for value in samples]
            summary = summarize(values)
            # normal_ci degenerates to (mean, mean) for singletons
            low, high = normal_ci(values)
            metrics.update(
                cover=summary.mean,
                cover_std=summary.std,
                cover_ci_low=low,
                cover_ci_high=high,
            )
        out.append((config.config_hash, metrics))
    return out


def _compute_rotor_covers_serial(
    n: int, max_rounds: int, configs: list
) -> list[tuple[str, dict]]:
    """Few-lane cover chunk on the O(k)-per-round serial ring engine.

    Mirrors the kernel's ``strict=False`` semantics: a cell that does
    not cover within its budget records ``cover=None`` instead of
    failing the chunk.
    """
    from repro.core.ring import RingRotorRouter

    obs.count("ring.serial_cells", len(configs))
    out: list[tuple[str, dict]] = []
    for config in configs:
        agents, directions = config.build()
        engine = RingRotorRouter(n, directions, agents, track_counts=False)
        try:
            cover = int(engine.run_until_covered(max_rounds))
        except RuntimeError:
            cover = None
        out.append((config.config_hash, {"cover": cover}))
    return out


def _compute_gaps_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Walk gap-statistics cells: one seeded measurement per cell.

    Gap cells have no lane-sharing structure (each is one k-walker
    stream observed at one node), so the chunk simply evaluates the
    vectorized :func:`repro.randomwalk.visits.ring_walk_gap_statistics`
    per cell; chunking still buys multiprocessing and caching.
    """
    from repro.randomwalk.visits import ring_walk_gap_statistics

    out: list[tuple[str, dict]] = []
    for data in payload["configs"]:
        cell = cell_from_dict(data)
        stats = ring_walk_gap_statistics(
            cell.n,
            cell.k,
            node=cell.node,
            observation_rounds=cell.observation_rounds,
            burn_in=cell.burn_in,
            seed=cell.seed,
        )
        out.append((cell.config_hash, stats.to_metrics()))
    return out


#: Serial-engine escape hatch for general chunks: below this many total
#: graph nodes across the chunk's lanes, kernel setup (stacking CSRs,
#: slab tables) costs more than it saves and the chunk runs on the
#: reference engine instead.  Identity-neutral, like the sparse-ring
#: crossover above: both paths are pinned bit-identical.
GENERAL_SERIAL_NODES = 256


def _compute_general_chunk(payload: dict) -> list[tuple[str, dict]]:
    """General-graph rotor cells: batched CSR kernel per chunk.

    The chunk carries its graphs once in a digest-keyed table
    (``payload["graphs"]``); every cell of the chunk becomes one lane
    of a single :class:`repro.sweep.batch_general.BatchGeneralKernel`
    invocation, so all seeds, k-values — and families — advance with
    shared vectorized rounds.  Tiny chunks take the reference-engine
    path instead (see :data:`GENERAL_SERIAL_NODES`).
    """
    graphs = {
        digest: shm.resolve_csr(entry)
        if shm.is_csr_descriptor(entry)
        else entry
        for digest, entry in payload["graphs"].items()
    }
    cells = [
        cell_from_dict(data, graphs=graphs) for data in payload["configs"]
    ]
    if sum(cell.n for cell in cells) <= GENERAL_SERIAL_NODES:
        return _compute_general_serial(cells)
    from repro.sweep.batch_general import batch_general_covers

    covers = batch_general_covers(
        [
            (cell.csr(), cell.ports, cell.agents, cell.max_rounds)
            for cell in cells
        ],
        strict=False,
    )
    return [
        (cell.config_hash, {"cover": int(c) if c >= 0 else None})
        for cell, c in zip(cells, covers)
    ]


def _compute_general_serial(cells: list) -> list[tuple[str, dict]]:
    """Small general chunks on the reference engine, one cell at a time.

    Mirrors the kernel's ``strict=False`` semantics: a cell that does
    not cover within its budget records ``cover=None``.
    """
    from repro.core.engine import MultiAgentRotorRouter
    from repro.graphs.base import PortLabeledGraph

    obs.count("general.serial_cells", len(cells))
    out: list[tuple[str, dict]] = []
    graph = None
    graph_ports = None
    for cell in cells:
        if graph is None or cell.graph_ports is not graph_ports:
            # Cells were serialized from validated graphs.
            graph = PortLabeledGraph(cell.graph_ports, validate=False)
            graph_ports = cell.graph_ports
        engine = MultiAgentRotorRouter(
            graph, list(cell.ports), list(cell.agents)
        )
        try:
            cover = engine.run_until_covered(cell.max_rounds)
        except RuntimeError:
            cover = None
        out.append((cell.config_hash, {"cover": cover}))
    return out


def _plan_chunks(
    misses: list,
    chunk_lanes: int,
    walk_chunk_walkers: int = DEFAULT_WALK_CHUNK_WALKERS,
    compact_ratio: float = DEFAULT_COMPACT_RATIO,
    jobs: int = 1,
    fuse_rounds: int | None = None,
) -> list[dict]:
    """Group misses by (model, n, budget, metrics); slice into payloads.

    The metric tuple is part of the group key: a chunk's payload
    carries exactly one metric set, so heterogeneous miss lists can
    never compute (and cache) the wrong metrics for some of their
    cells.  Walk chunks are additionally split by total walker count
    (``Σ k·repetitions``), which bounds the walk kernel's block-buffer
    memory regardless of how many repetitions a cell fans out into.
    ``compact_ratio`` rides along in every rotor payload to tune the
    limit-cycle pipeline's lane compaction.

    General-graph cells group together regardless of size or budget —
    the CSR kernel steps heterogeneous lanes natively, and the more
    lanes share one invocation, the better the long single-agent tails
    amortize — ordered by graph digest so every chunk's cells cluster
    by graph and its digest-keyed graph table (``payload["graphs"]``,
    one :class:`~repro.graphs.base.GraphCSR` per distinct graph) stays
    small.  With ``jobs <= 1`` the whole group is one chunk (splitting
    buys nothing in-process); parallel runs split it into up to
    ``2·jobs`` chunks balanced by occupied-pair load estimates
    (``min(k, n) · max_rounds`` per cell), not by lane count.

    ``fuse_rounds`` rides along in every payload (like
    ``compact_ratio``): ``None`` leaves each kernel on its own tuned
    default, an explicit value pins the fusion factor — either way the
    results are bit-identical, so it never joins the cache identity.
    """
    groups: dict[tuple[str, int, int, tuple[str, ...]], list] = {}
    for config in misses:
        if config.model == "rotor-general":
            # One group: lane budgets/sizes are per-cell in the kernel.
            key = (config.model, 0, 0, tuple(config.metrics))
        else:
            key = (
                config.model, config.n, config.max_rounds,
                tuple(config.metrics),
            )
        groups.setdefault(key, []).append(config)
    payloads = []
    for (model, n, max_rounds, metrics), members in sorted(groups.items()):
        if model == "rotor-general":
            # Stable, so same-graph cells keep their miss order.
            members = sorted(members, key=lambda cell: cell.graph_digest)
        for chunk in _slice_chunks(
            model, members, chunk_lanes, walk_chunk_walkers, jobs
        ):
            payload = {
                "model": model,
                "n": n,
                "max_rounds": max_rounds,
                "metrics": list(metrics),
                "compact_ratio": compact_ratio,
                "fuse_rounds": fuse_rounds,
                "configs": [config.to_dict() for config in chunk],
                # Chunk-ordered hashes ride along so the supervisor can
                # quarantine (and fault plans can target) cells without
                # rebuilding them from their dict forms.
                "cell_hashes": [config.config_hash for config in chunk],
            }
            if model == "rotor-general":
                payload["max_rounds"] = max(
                    config.max_rounds for config in chunk
                )
                payload["graphs"] = {
                    config.graph_digest: config.csr() for config in chunk
                }
            payloads.append(payload)
    return payloads


def _slice_chunks(
    model: str,
    members: list,
    chunk_lanes: int,
    walk_chunk_walkers: int,
    jobs: int = 1,
) -> list[list]:
    """Split one group's members into kernel-sized chunks."""
    if model == "rotor-general":
        # Lane sharing is the whole point of the general kernel: only
        # split when worker processes can actually consume the chunks.
        # The split is topology-aware: a lane's per-round vector cost
        # scales with its occupied pairs (bounded by min(k, n)) for up
        # to max_rounds rounds, so chunks close on that load estimate
        # rather than on lane count — one huge-graph cell no longer
        # weighs the same as a dozen tiny ones.  Members arrive
        # digest-sorted, so contiguous chunks keep same-graph cells
        # (and their shared CSR tables) together.
        if jobs <= 1:
            return [members]
        weights = [
            min(cell.k, cell.n) * max(1, cell.max_rounds)
            for cell in members
        ]
        target = max(1, sum(weights) // (2 * jobs))
        chunks = []
        current: list = []
        load = 0
        for cell, weight in zip(members, weights):
            current.append(cell)
            load += weight
            if load >= target and len(chunks) < 2 * jobs - 1:
                chunks.append(current)
                current, load = [], 0
        if current:
            chunks.append(current)
        return chunks
    if model != "walk":
        return [
            members[start:start + chunk_lanes]
            for start in range(0, len(members), chunk_lanes)
        ]
    chunks: list[list] = []
    current: list = []
    walkers = 0
    for config in members:
        weight = config.k * config.repetitions
        if current and (
            len(current) >= chunk_lanes
            or walkers + weight > walk_chunk_walkers
        ):
            chunks.append(current)
            current, walkers = [], 0
        current.append(config)
        walkers += weight
    if current:
        chunks.append(current)
    return chunks


def _pack_shm_payloads(payloads: list[dict]) -> "shm.SlabArena | None":
    """Move parallel payloads' large arrays into one shared segment.

    Rotor chunks get their lane slabs (``(B, n)`` pointers/counts)
    prebuilt here and replaced by descriptors under ``payload["lanes"]``
    — unless the chunk would take the serial-covers path, which wants
    per-cell configs, not slabs.  General chunks get their digest-keyed
    graph tables packed once *per distinct graph across all chunks*
    (the same descriptor triple is shared), so a graph that spans chunk
    boundaries ships a single copy.  Walk and gap payloads are already
    descriptor-sized (seeds and positions) and pass through untouched.

    Returns the sealed arena (caller owns the unlink), or None when
    nothing was worth packing.
    """
    arena = shm.SlabArena()
    graph_entries: dict[str, dict] = {}
    for payload in payloads:
        model = payload["model"]
        if model == "rotor-general":
            packed = {}
            for digest, csr in payload["graphs"].items():
                entry = graph_entries.get(digest)
                if entry is None:
                    entry = shm.pack_csr(arena, csr)
                    graph_entries[digest] = entry
                packed[digest] = entry
            payload["graphs"] = packed
        elif model != "walk":
            configs = [cell_from_dict(data) for data in payload["configs"]]
            if list(payload["metrics"]) == ["cover"] and _prefer_serial_covers(
                payload["n"], configs
            ):
                continue  # the worker re-derives the serial decision
            built = [config.build() for config in configs]
            pointers, counts = lanes_from_configs(
                payload["n"],
                [(directions, agents) for agents, directions in built],
            )
            payload["lanes"] = {
                "pointers": arena.add(pointers),
                "counts": arena.add(counts),
            }
    if not len(arena):
        return None
    arena.seal()
    return arena


def _create_pool(jobs: int):
    """Worker-pool factory, a seam so tests can break pool creation."""
    return multiprocessing.Pool(processes=jobs)


class _ChunkTask:
    """One chunk payload's lifecycle under the supervisor."""

    __slots__ = ("payload", "tries_left", "attempt", "deadline",
                 "handle", "retry_at")

    def __init__(self, payload: dict, tries_left: int) -> None:
        self.payload = payload
        #: Failure-driven redispatches still available.
        self.tries_left = tries_left
        #: Total redispatch count (failures *and* pool restarts): keys
        #: the backoff exponent and the fault stanza's attempt field.
        self.attempt = 0
        #: Monotonic deadline while in flight (None = no timeout).
        self.deadline: float | None = None
        #: The pool ``AsyncResult`` while in flight.
        self.handle = None
        #: Monotonic earliest redispatch time (retry backoff).
        self.retry_at = 0.0


class _Supervisor:
    """Supervising dispatcher: every chunk completes or quarantines.

    Replaces the historical bare ``Pool.imap_unordered`` loop.  Chunks
    are tracked individually via ``apply_async`` handles so the
    supervisor can enforce per-chunk deadlines, notice worker death
    (the pool's worker pid set changing, or a worker no longer alive),
    and keep scheduling around failures:

    - a failed attempt (worker exception or deadline) is redispatched
      up to ``max_retries`` times with exponential backoff;
    - a chunk that exhausts its retries is **bisected** — both halves
      re-enter the queue with zero retries — until the failure is
      isolated to a single cell, which is quarantined with its
      exception summary instead of failing the sweep;
    - a timeout or dead worker tears the pool down and rebuilds it
      (reclaiming the hung/lost worker slots), re-queueing whatever
      was in flight; after ``MAX_POOL_RESTARTS`` rebuilds — or when
      the pool cannot be (re)built or dispatched to at all — the
      remaining chunks degrade to in-process serial execution;
    - with ``jobs <= 1`` chunks simply run in-process under the same
      retry/bisect/quarantine logic (no deadlines: there is no worker
      to preempt, and ``KeyboardInterrupt`` must keep propagating for
      interrupt safety).

    The supervisor owns scheduling only; committing results stays with
    the caller through the ``commit``/``quarantine`` callbacks, so
    cache writes and progress accounting are unchanged from the
    historical loop.
    """

    #: Idle sleep between polls of in-flight handles, seconds.
    POLL_INTERVAL = 0.02
    #: Pool rebuilds allowed before degrading to serial execution.
    MAX_POOL_RESTARTS = 5

    def __init__(
        self,
        jobs: int,
        commit: Callable[[list[tuple[str, dict]]], None],
        quarantine: Callable[[str, str], None],
        report: FailureReport,
        max_retries: int,
        chunk_timeout: float | None,
        retry_backoff: float,
        session=None,
    ) -> None:
        self.jobs = jobs
        self.commit = commit
        self.quarantine = quarantine
        self.report = report
        self.max_retries = max_retries
        self.chunk_timeout = chunk_timeout
        self.retry_backoff = retry_backoff
        self.session = session
        self.queue: deque[_ChunkTask] = deque()
        self.in_flight: list[_ChunkTask] = []
        self.pool = None
        self._pids: tuple[int, ...] | None = None

    # -- public ---------------------------------------------------------
    def run(self, payloads: list[dict]) -> None:
        for payload in payloads:
            self.queue.append(_ChunkTask(payload, self.max_retries))
        if self.jobs > 1:
            self._run_pool()
        else:
            self._run_serial()

    # -- serial path ----------------------------------------------------
    def _run_serial(self) -> None:
        while self.queue:
            task = self.queue.popleft()
            delay = task.retry_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                pairs = compute_chunk(task.payload)
            except Exception as exc:  # KeyboardInterrupt propagates
                self._on_failure(task, exc)
                continue
            self.commit(pairs)

    # -- pool path ------------------------------------------------------
    def _run_pool(self) -> None:
        self.pool = self._spawn_pool()
        try:
            while self.queue or self.in_flight:
                if self.pool is None:
                    self._degrade_to_serial()
                    return
                self._dispatch_ready()
                progressed, timed_out = self._poll_in_flight()
                if self.pool is not None and self._workers_changed():
                    self._restart_pool()
                elif timed_out:
                    # The hung worker still occupies its slot; only a
                    # pool rebuild reclaims it.
                    self._restart_pool()
                elif not progressed and (self.queue or self.in_flight):
                    time.sleep(self.POLL_INTERVAL)
        finally:
            pool, self.pool = self.pool, None
            if pool is not None:
                pool.terminate()
                pool.join()

    def _spawn_pool(self):
        try:
            pool = _create_pool(self.jobs)
        except Exception:
            return None
        self._pids = self._observed_pids(pool)
        return pool

    def _observed_pids(self, pool) -> tuple[int, ...] | None:
        """The live worker pid set, or None when unobservable.

        ``Pool._pool`` is private API, so every access is defensive:
        an unobservable pool simply loses crash detection (timeouts
        still fire), it never breaks dispatch.
        """
        procs = getattr(pool, "_pool", None)
        if procs is None:
            return None
        try:
            return tuple(sorted(
                proc.pid for proc in list(procs) if proc.is_alive()
            ))
        except Exception:
            return None

    def _workers_changed(self) -> bool:
        if self._pids is None:
            return False
        observed = self._observed_pids(self.pool)
        return observed is not None and observed != self._pids

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        for _ in range(len(self.queue)):
            task = self.queue.popleft()
            if task.retry_at > now:
                self.queue.append(task)  # rotate; redispatch later
                continue
            try:
                task.handle = self.pool.apply_async(
                    compute_chunk, (task.payload,)
                )
            except Exception:
                # The pool is broken beyond dispatching: drop it and
                # let the main loop degrade to serial.
                self.queue.appendleft(task)
                self._teardown_pool()
                return
            if self.chunk_timeout is not None:
                task.deadline = time.monotonic() + self.chunk_timeout
            self.in_flight.append(task)

    def _poll_in_flight(self) -> tuple[bool, bool]:
        progressed = False
        timed_out = False
        still: list[_ChunkTask] = []
        for task in self.in_flight:
            ready = False
            try:
                ready = task.handle.ready()
            except Exception:
                ready = False
            if ready:
                progressed = True
                try:
                    pairs = task.handle.get()
                except Exception as exc:
                    self._on_failure(task, exc)
                else:
                    task.handle = None
                    self.commit(pairs)
                continue
            if task.deadline is not None and time.monotonic() > task.deadline:
                timed_out = True
                self.report.timeouts += 1
                self._on_failure(task, TimeoutError(
                    f"chunk exceeded its {self.chunk_timeout:g}s deadline"
                ))
                continue
            still.append(task)
        self.in_flight = still
        return progressed, timed_out

    def _restart_pool(self) -> None:
        """Tear the pool down, re-queue in-flight work, rebuild.

        Restart re-queues are not retries: a chunk that merely shared
        the pool with a crashed/hung neighbour keeps its budget, and
        its attempt counter still advances so first-attempt-only
        injected faults cannot refire forever.
        """
        self.report.pool_restarts += 1
        self._teardown_pool()
        while self.in_flight:
            task = self.in_flight.pop()
            task.handle = None
            task.deadline = None
            task.attempt += 1
            self._sync_attempt(task)
            task.retry_at = 0.0
            self.queue.appendleft(task)
        if self.report.pool_restarts <= self.MAX_POOL_RESTARTS:
            self.pool = self._spawn_pool()

    def _teardown_pool(self) -> None:
        pool, self.pool = self.pool, None
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass

    def _degrade_to_serial(self) -> None:
        self.report.serial_fallbacks += 1
        while self.in_flight:
            task = self.in_flight.pop()
            task.handle = None
            task.deadline = None
            self.queue.appendleft(task)
        self._run_serial()

    # -- failure handling (both paths) ----------------------------------
    def _sync_attempt(self, task: _ChunkTask) -> None:
        stanza = task.payload.get("faults")
        if stanza is not None:
            stanza["attempt"] = task.attempt

    def _on_failure(self, task: _ChunkTask, exc: BaseException) -> None:
        task.handle = None
        task.deadline = None
        if task.tries_left > 0:
            task.tries_left -= 1
            task.attempt += 1
            self._sync_attempt(task)
            self.report.retries += 1
            backoff = self.retry_backoff * (2 ** (task.attempt - 1))
            task.retry_at = time.monotonic() + backoff
            self.queue.append(task)
            return
        self._bisect_or_quarantine(task, exc)

    def _bisect_or_quarantine(self, task: _ChunkTask, exc: BaseException):
        summary = f"{type(exc).__name__}: {exc}"
        configs = task.payload["configs"]
        if len(configs) <= 1:
            self.quarantine(task.payload["cell_hashes"][0], summary)
            return
        self.report.chunk_failures += 1
        mid = len(configs) // 2
        # Halves go to the queue front so isolation finishes promptly;
        # appendleft order puts the low half first.
        for lo, hi in ((mid, len(configs)), (0, mid)):
            sub = self._subset_payload(task.payload, lo, hi)
            self.queue.appendleft(_ChunkTask(sub, tries_left=0))

    def _subset_payload(self, payload: dict, lo: int, hi: int) -> dict:
        """A payload computing ``configs[lo:hi]`` of ``payload``.

        Prebuilt shared-memory lane slabs are dropped (the worker
        rebuilds small slices from the configs), the general-graph
        table shrinks to the slice's digests, and the fault stanza —
        if any — is re-keyed to ``chunk=None``: chunk-indexed faults
        never target bisection sub-chunks, so isolating a poison cell
        always converges.
        """
        sub = dict(payload)
        sub.pop("lanes", None)
        sub["configs"] = payload["configs"][lo:hi]
        sub["cell_hashes"] = payload["cell_hashes"][lo:hi]
        if "graphs" in payload:
            digests = {data.get("graph") for data in sub["configs"]}
            sub["graphs"] = {
                digest: graph
                for digest, graph in payload["graphs"].items()
                if digest in digests
            }
        stanza = payload.get("faults")
        if stanza is not None:
            sub["faults"] = dict(stanza, chunk=None, attempt=0)
        if self.session is not None:
            sub["trace"] = self.session.next_chunk_trace()
        else:
            sub.pop("trace", None)
        return sub


class StderrProgress:
    """Progress reporter with elapsed time, rate and ETA.

    On a TTY the status line rewrites in place (``\\r``) and ends with
    a newline at completion; on a non-TTY stream (CI logs, pipes) it
    emits plain newline-terminated lines at most every ``interval``
    seconds — plus the first and final updates — so logs stay clean.

    The rate counts configurations completed since the first call of a
    sweep, which excludes the initial cache-hit jump: the ETA reflects
    actual compute throughput, not cache reads.  The rate itself is
    measured over a sliding window of recent updates (at most
    ``RATE_WINDOW`` seconds) rather than the whole sweep: fused chunks
    complete many cells in one burst after a long silent epoch, and a
    since-start rate would let that stall (or a fast cached prefix)
    distort the ETA for the rest of the run.  The window is clamped at
    those epoch boundaries — it always retains the sample immediately
    before a burst, so the burst is averaged over the epoch that
    produced it and never reads as instantaneous throughput.  An
    instance resets itself when ``total`` changes, ``done`` regresses,
    or a sweep completes, so one instance serves consecutive sweeps.
    """

    #: Sliding rate-window span, seconds.
    RATE_WINDOW = 30.0

    def __init__(
        self,
        stream: TextIO | None = None,
        interval: float = 5.0,
        tty: bool | None = None,
    ) -> None:
        self.stream = stream
        self.interval = interval
        self.tty = tty
        self._reset()

    def _reset(self) -> None:
        self._watch: Stopwatch | None = None
        self._total: int | None = None
        self._last_done = 0
        self._baseline = 0
        self._last_emit: float | None = None
        self._samples: list[tuple[float, int]] = []

    def _rate(self, elapsed: float, computed: int) -> float | None:
        """Completions/second over the clamped sliding window."""
        samples = self._samples
        samples.append((elapsed, computed))
        # Drop history beyond the window but always keep the sample
        # preceding the newest one: after an epoch-long stall the rate
        # spans exactly [previous update, burst], nothing older.
        while len(samples) > 2 and elapsed - samples[0][0] > self.RATE_WINDOW:
            samples.pop(0)
        start_elapsed, start_computed = samples[0]
        if computed > start_computed and elapsed > start_elapsed:
            return (computed - start_computed) / (elapsed - start_elapsed)
        return None

    def __call__(self, done: int, total: int) -> None:
        stream = self.stream if self.stream is not None else sys.stderr
        if (
            self._watch is None
            or total != self._total
            or done < self._last_done
        ):
            self._reset()
            self._watch = Stopwatch().start()
            self._total = total
            self._baseline = done
        self._last_done = done
        elapsed = self._watch.split()
        line = f"sweep: {done}/{total} configurations elapsed={elapsed:.1f}s"
        rate = self._rate(elapsed, done - self._baseline)
        if rate is not None:
            line += f" rate={rate:.1f}/s"
            if done < total:
                line += f" eta={(total - done) / rate:.0f}s"
        final = done >= total
        tty = (
            self.tty
            if self.tty is not None
            else bool(getattr(stream, "isatty", lambda: False)())
        )
        if tty:
            print(line, file=stream, end="\n" if final else "\r", flush=True)
        elif (
            final
            or self._last_emit is None
            or elapsed - self._last_emit >= self.interval
        ):
            print(line, file=stream, flush=True)
            self._last_emit = elapsed
        if final:
            self._reset()


#: Default progress reporter: one shared auto-resetting instance, so
#: existing ``progress=stderr_progress`` call sites keep working.
stderr_progress = StderrProgress()


def run_cells(
    cells: Sequence,
    jobs: int = 1,
    cache_dir: str | None = None,
    progress: ProgressFn | None = None,
    chunk_lanes: int = DEFAULT_CHUNK_LANES,
    walk_chunk_walkers: int = DEFAULT_WALK_CHUNK_WALKERS,
    compact_ratio: float = DEFAULT_COMPACT_RATIO,
    fuse_rounds: int | None = None,
    faults: FaultPlan | None = None,
    max_retries: int | None = None,
    chunk_timeout: float | None = None,
    retry_backoff: float | None = None,
) -> tuple[dict[str, dict], set[str], FailureReport]:
    """Execute a flat cell list: cache probe, then batched chunks.

    The workhorse under both :func:`run_sweep` (scenario grids) and the
    analysis backend (:mod:`repro.analysis.backend` explicit experiment
    cells).  ``cells`` may mix models and cell kinds — anything
    exposing the sweep-cell surface (``model``/``n``/``max_rounds``/
    ``metrics``/``k``/``repetitions``/``config_hash``/``to_dict``)
    schedules; duplicate hashes are computed once.

    Returns ``(metrics_by_hash, cached_hashes, failure_report)``:
    every requested hash's metrics, the subset served from the cache,
    and the :class:`FailureReport` of whatever the supervisor had to
    survive — quarantined hashes are absent from ``metrics_by_hash``
    and callers decide whether that is fatal.

    ``cache_dir`` is a store spec: a plain directory path opens the
    JSON tree backend, a ``sqlite://<dir>`` (or ``json://<dir>``)
    prefix selects a backend explicitly (see
    :mod:`repro.sweep.store`).  Results are bit-identical across
    backends; only probe/commit latency differs.

    The robustness knobs resolve explicit argument > ambient
    :func:`repro.sweep.faults.execution_policy` > module default
    (``max_retries=2``, no ``chunk_timeout``, ``retry_backoff=0.1``).
    ``faults`` defaults to the :data:`repro.sweep.faults.FAULTS_ENV`
    hook, so chaos jobs can reach an unmodified CLI.  None of these —
    nor any injected fault — affects a computed result or any cache
    identity.
    """
    if jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if chunk_lanes < 1:
        raise ValueError(f"chunk_lanes must be positive, got {chunk_lanes}")
    if walk_chunk_walkers < 1:
        raise ValueError(
            f"walk_chunk_walkers must be positive, got {walk_chunk_walkers}"
        )
    if fuse_rounds is not None and fuse_rounds < 1:
        raise ValueError(
            f"fuse_rounds must be at least 1, got {fuse_rounds}"
        )
    _check_compact_ratio(compact_ratio)
    policy = active_policy()
    if max_retries is None:
        max_retries = (
            policy.max_retries
            if policy is not None and policy.max_retries is not None
            else DEFAULT_MAX_RETRIES
        )
    if chunk_timeout is None and policy is not None:
        chunk_timeout = policy.chunk_timeout
    if retry_backoff is None:
        retry_backoff = (
            policy.retry_backoff
            if policy is not None and policy.retry_backoff is not None
            else DEFAULT_RETRY_BACKOFF
        )
    if max_retries < 0:
        raise ValueError(f"max_retries must be non-negative, got {max_retries}")
    if chunk_timeout is not None and chunk_timeout <= 0:
        raise ValueError(
            f"chunk_timeout must be positive, got {chunk_timeout}"
        )
    if retry_backoff < 0:
        raise ValueError(
            f"retry_backoff must be non-negative, got {retry_backoff}"
        )
    if faults is None:
        faults = FaultPlan.from_env()
    if faults is not None and not faults.enabled:
        faults = None
    cache: CacheStore | None = open_store(cache_dir) if cache_dir else None
    try:
        return _run_cells_with_store(
            cells, cache, jobs, progress, chunk_lanes, walk_chunk_walkers,
            compact_ratio, fuse_rounds, faults, max_retries, chunk_timeout,
            retry_backoff,
        )
    finally:
        if cache is not None:
            cache.close()


def _run_cells_with_store(
    cells: Sequence,
    cache: CacheStore | None,
    jobs: int,
    progress: ProgressFn | None,
    chunk_lanes: int,
    walk_chunk_walkers: int,
    compact_ratio: float,
    fuse_rounds: int | None,
    faults: FaultPlan | None,
    max_retries: int,
    chunk_timeout: float | None,
    retry_backoff: float,
) -> tuple[dict[str, dict], set[str], FailureReport]:
    """The body of :func:`run_cells`, over an already opened store."""
    session = obs.current_session()
    report = FailureReport()

    unique: list = []
    seen: set[str] = set()
    for cell in cells:
        if cell.config_hash not in seen:
            seen.add(cell.config_hash)
            unique.append(cell)
    total = len(unique)

    metrics_by_hash: dict[str, dict] = {}
    cached_hashes: set[str] = set()
    misses: list = []
    with obs.span("cache.get", cells=total, enabled=cache is not None):
        if cache is not None:
            # One batched probe for the whole plan: the SQLite backend
            # answers it with a few indexed queries per shard, the JSON
            # tree with its historical per-cell reads.
            found, statuses = cache.lookup_many(unique)
            metrics_by_hash.update(found)
            cached_hashes.update(found)
            misses = [
                cell for cell in unique if cell.config_hash not in found
            ]
        else:
            misses = list(unique)
    if cache is not None:
        hits = sum(1 for s in statuses.values() if s == "hit")
        corrupt = sum(1 for s in statuses.values() if s == "corrupt")
        probe_misses = total - hits - corrupt
        obs.count_many({
            "cache.batch_lookups": 1,
            "cache.batch_size": total,
            "cache.hits": hits,
            "cache.misses": probe_misses,
            "cache.corrupt": corrupt,
            f"cache.{cache.backend}.hits": hits,
            f"cache.{cache.backend}.misses": probe_misses,
            f"cache.{cache.backend}.corrupt": corrupt,
        })
        if corrupt:
            # Self-healing: evict the corrupt rows now, so even a run
            # interrupted before recompute leaves no poison behind.
            quarantined_rows = cache.quarantine_many(sorted(
                config_hash
                for config_hash, status in statuses.items()
                if status == "corrupt"
            ))
            obs.count("cache.quarantined", quarantined_rows)
    done = total - len(misses)
    if progress:
        progress(done, total)

    by_hash = {cell.config_hash: cell for cell in misses}
    with obs.span("plan", misses=len(misses)):
        payloads = _plan_chunks(
            misses, chunk_lanes, walk_chunk_walkers, compact_ratio, jobs,
            fuse_rounds,
        )
    if session is not None:
        for payload in payloads:
            payload["trace"] = session.next_chunk_trace()
    if faults is not None:
        for index, payload in enumerate(payloads):
            payload["faults"] = faults.stanza(
                chunk=index, parent_pid=os.getpid()
            )
    obs.count_many({
        "executor.chunks": len(payloads),
        "executor.cells": total,
        "executor.cells_computed": len(misses),
        "executor.cells_cached": len(cached_hashes),
    })

    def commit(pairs: list[tuple[str, dict]]) -> None:
        nonlocal done
        put_span = (
            obs.span("cache.put", cells=len(pairs))
            if cache is not None
            else nullcontext()
        )
        with put_span:
            for config_hash, metrics in pairs:
                metrics_by_hash[config_hash] = metrics
            if cache is not None:
                # One transaction per chunk instead of N file replaces.
                cache.put_many(
                    [(by_hash[h], metrics) for h, metrics in pairs]
                )
                obs.count_many({
                    "cache.puts": len(pairs),
                    "cache.batch_puts": 1,
                })
                if faults is not None:
                    victims = faults.corrupt_matches(
                        [config_hash for config_hash, _ in pairs]
                    )
                    if victims:
                        corrupt_rows_in_store(cache, victims)
            done += len(pairs)
        if progress:
            progress(done, total)

    def quarantine(config_hash: str, summary: str) -> None:
        nonlocal done
        report.quarantined[config_hash] = summary
        done += 1  # abandoned, but accounted: progress reaches total
        if progress:
            progress(done, total)

    if payloads:
        with obs.span("aggregate", chunks=len(payloads)):
            supervisor = _Supervisor(
                jobs=jobs,
                commit=commit,
                quarantine=quarantine,
                report=report,
                max_retries=max_retries,
                chunk_timeout=chunk_timeout,
                retry_backoff=retry_backoff,
                session=session,
            )
            if jobs > 1:
                # Large chunk arrays ship through one shared-memory
                # segment owned by this call; workers map it read-only
                # and payload pickles stay descriptor-sized.  The
                # finally unlinks even if a worker (or the pool) dies:
                # live worker mappings survive the unlink, nothing
                # leaks past this call.
                arena = _pack_shm_payloads(payloads)
                if arena is not None:
                    obs.count_many({
                        "executor.shm_segments": 1,
                        "executor.shm_bytes": arena.nbytes,
                    })
                try:
                    supervisor.run(payloads)
                finally:
                    if arena is not None:
                        arena.close()
            else:
                supervisor.run(payloads)
    fault_counters = report.counters()
    if fault_counters:
        obs.count_many(fault_counters)
    if session is not None:
        # Crash-safe: every run_cells exit folds all shards written so
        # far into the manifest, so multi-experiment runs keep their
        # trace even if a later experiment dies.
        session.checkpoint()
    return metrics_by_hash, cached_hashes, report


def run_sweep(
    spec: ScenarioSpec,
    jobs: int = 1,
    cache_dir: str | None = None,
    progress: ProgressFn | None = None,
    chunk_lanes: int | None = None,
    walk_chunk_walkers: int | None = None,
    compact_ratio: float | None = None,
    fuse_rounds: int | None = None,
    faults: FaultPlan | None = None,
    max_retries: int | None = None,
    chunk_timeout: float | None = None,
    retry_backoff: float | None = None,
) -> SweepResult:
    """Execute a sweep: cache probe, then parallel batched simulation.

    ``jobs <= 1`` runs chunks in-process; otherwise a multiprocessing
    pool of ``jobs`` workers consumes them.  ``progress`` (if given) is
    called with ``(done, total)`` configuration counts as results
    arrive, cache hits included.

    The scheduling knobs — ``chunk_lanes`` (lanes per kernel chunk),
    ``walk_chunk_walkers`` (walker cap per walk chunk),
    ``compact_ratio`` (the limit-cycle pipeline's lane-compaction
    threshold) and ``fuse_rounds`` (the kernels' round-fusion factor;
    ``None`` keeps each kernel's tuned default) — resolve explicit
    argument > scenario hint > module default, so benchmarks and the
    CLI can sweep them without editing scenarios.  None of them
    affects any result or cache identity, only how the work is
    batched.

    The robustness knobs (``faults``/``max_retries``/
    ``chunk_timeout``/``retry_backoff``) pass straight through to
    :func:`run_cells`.  A quarantined cell becomes a
    ``failed=True`` :class:`ConfigResult` with empty metrics; the
    sweep itself still succeeds, with the details in
    ``SweepResult.failure_report``.
    """
    if chunk_lanes is None:
        chunk_lanes = spec.chunk_lanes or DEFAULT_CHUNK_LANES
    if walk_chunk_walkers is None:
        walk_chunk_walkers = (
            spec.walk_chunk_walkers or DEFAULT_WALK_CHUNK_WALKERS
        )
    if compact_ratio is None:
        compact_ratio = (
            spec.compact_ratio
            if spec.compact_ratio is not None
            else DEFAULT_COMPACT_RATIO
        )
    if fuse_rounds is None:
        fuse_rounds = spec.fuse_rounds
    started = time.perf_counter()
    configs = spec.configs()  # spec expansion guarantees unique cells
    metrics_by_hash, cached_hashes, failure_report = run_cells(
        configs,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        chunk_lanes=chunk_lanes,
        walk_chunk_walkers=walk_chunk_walkers,
        compact_ratio=compact_ratio,
        fuse_rounds=fuse_rounds,
        faults=faults,
        max_retries=max_retries,
        chunk_timeout=chunk_timeout,
        retry_backoff=retry_backoff,
    )
    results = []
    for config in configs:
        metrics = metrics_by_hash.get(config.config_hash)
        if metrics is None:
            results.append(ConfigResult(
                config=config, metrics={}, cached=False, failed=True,
            ))
        else:
            results.append(ConfigResult(
                config=config,
                metrics=metrics,
                cached=config.config_hash in cached_hashes,
            ))
    hits = sum(result.cached for result in results)
    failed = sum(result.failed for result in results)
    return SweepResult(
        spec=spec,
        results=results,
        elapsed=time.perf_counter() - started,
        cache_hits=hits,
        cache_misses=len(results) - hits - failed,
        failed=failed,
        failure_report=failure_report,
    )


