"""Parallel sweep executor with an on-disk JSON result cache.

``run_sweep`` turns a :class:`repro.sweep.spec.ScenarioSpec` into
results in three stages:

1. **cache probe** — every expanded cell is looked up in the cache
   directory by its ``config_hash``; hits are served without any
   simulation, which is what makes repeated and resumed sweeps free;
2. **batch planning** — cache misses are grouped by model, ring size,
   round budget and metric set, then chunked; a rotor chunk becomes
   one :class:`repro.sweep.batch_ring.BatchRingKernel` invocation
   stepping all of the chunk's lanes with shared vectorized rounds,
   a walk chunk one :class:`repro.sweep.batch_walk.BatchRingWalks`
   invocation whose lanes are the cells' seeded repetitions (walk
   chunks are additionally capped by total walker count, since the
   block buffers scale with ``Σ k·repetitions``), and a general-graph
   chunk one :class:`repro.sweep.batch_general.BatchGeneralKernel`
   invocation over a digest-keyed graph table (graphs serialize once
   per chunk, lanes of *different* graphs share rounds);
3. **execution** — chunks run in-process (``jobs <= 1``) or across a
   ``multiprocessing`` pool, with per-chunk progress reporting; fresh
   results are written back to the cache as they arrive.

Cache entries are one JSON file per cell (``<hash prefix>/<hash>.json``)
holding the cell's identity plus its metrics, so a cache directory is
portable, inspectable and safely shared between scenarios: any two
specs containing the same cell exchange results through it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.sweep.batch_ring import (
    DEFAULT_COMPACT_RATIO,
    BatchLimitCycles,
    BatchRingKernel,
    _check_compact_ratio,
    batch_limit_cycles,
    batch_return_gaps,
    lanes_from_configs,
)
from repro.sweep.batch_walk import BatchRingWalks, walk_lanes_from_cells
from repro.sweep.cells import cell_from_dict
from repro.sweep.spec import ScenarioSpec, SweepConfig
from repro.util.stats import normal_ci, summarize
from repro.util.tables import Table

#: Lanes per kernel invocation: large enough to amortize numpy
#: dispatch, small enough to keep many chunks in flight per worker.
DEFAULT_CHUNK_LANES = 64

#: Walker cap per walk chunk: the walk kernel's block buffers are
#: ``(block_size, Σ k·repetitions)`` int64 matrices, so chunks are
#: additionally split once their total walker count crosses this
#: (4096 walkers ≈ 32 MiB per 1024-round block buffer).
DEFAULT_WALK_CHUNK_WALKERS = 4096

def _prefer_serial_covers(n: int, configs: Sequence) -> bool:
    """Whether a cover-only rotor chunk should skip the batch kernel.

    A kernel round sweeps the full ``(B, n)`` configuration matrix; a
    serial dict-engine round touches only the occupied nodes, O(k).
    Their per-round work ratio is therefore ``Σ k_i`` (all lanes'
    agents) against ``B·n``, and with the two engines' measured
    per-element constants the crossover lands almost exactly at
    ``Σ k_i ≈ n`` for n in 256..1024 (sparse-agent grids — few lanes
    or small k at large n — favor the serial engine; dense grids the
    kernel).  Both paths are pinned bit-identical by the equivalence
    suites; this chooses scheduling, never semantics.
    """
    return sum(config.k for config in configs) < n

ProgressFn = Callable[[int, int], None]


class ResultCache:
    """One JSON file per sweep cell, keyed by its config hash."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def path(self, config_hash: str) -> str:
        return os.path.join(
            self.directory, config_hash[:2], f"{config_hash}.json"
        )

    def get(self, config: SweepConfig) -> dict | None:
        """The cached metrics for ``config``, or None on a miss.

        Unreadable or mismatched entries count as misses (and are
        recomputed) rather than failing the sweep.
        """
        path = self.path(config.config_hash)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("config") != config.identity():
            return None
        metrics = entry.get("metrics")
        return metrics if isinstance(metrics, dict) else None

    def put(self, config: SweepConfig, metrics: dict) -> str:
        path = self.path(config.config_hash)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"config": config.identity(), "metrics": metrics}
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)  # atomic: concurrent writers agree anyway
        return path

    def __len__(self) -> int:
        total = 0
        for _, _, files in os.walk(self.directory):
            total += sum(name.endswith(".json") for name in files)
        return total


@dataclass(frozen=True)
class ConfigResult:
    """Metrics of one sweep cell, with provenance."""

    config: SweepConfig
    metrics: dict
    cached: bool


@dataclass
class SweepResult:
    """All cell results of one sweep run, in spec expansion order."""

    spec: ScenarioSpec
    results: list[ConfigResult]
    elapsed: float
    cache_hits: int = 0
    cache_misses: int = 0

    _METRIC_COLUMNS = (
        ("cover", ".1f"),
        ("cover_ci_low", ".1f"),
        ("cover_ci_high", ".1f"),
        ("cover_reps", "d"),
        ("preperiod", "d"),
        ("period", "d"),
        ("worst_gap", ".0f"),
        ("best_gap", ".0f"),
    )

    def table(self) -> Table:
        """Render every cell as one row (generic sweep layout).

        Stochastic (walk) cells report their repetition mean in the
        ``cover`` column plus the CI bounds and repetition count; the
        CI columns only appear when some cell recorded them.
        """
        present = [
            (name, fmt)
            for name, fmt in self._METRIC_COLUMNS
            if any(name in r.metrics for r in self.results)
        ]
        table = Table(
            columns=["model", "n", "k", "placement", "pointers", "seed"]
            + [name for name, _ in present]
            + ["cached"],
            caption=f"sweep '{self.spec.name}': "
            f"{len(self.results)} configurations",
            formats=[None, "d", "d", None, None, "d"]
            + [fmt for _, fmt in present]
            + [None],
        )
        for result in self.results:
            config = result.config
            table.add_row(
                config.model,
                config.n,
                config.k,
                config.placement,
                config.pointer,
                config.seed,
                *[result.metrics.get(name) for name, _ in present],
                "yes" if result.cached else "no",
            )
        return table


def compute_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Run one chunk of same-model, same-``n`` cells through a kernel.

    ``payload`` is a plain dict (picklable for worker processes) with
    the model, ring size, round budget, metric list and the cells'
    dict forms.  Returns ``(config_hash, metrics)`` pairs in chunk
    order.
    """
    if payload["model"] == "walk":
        if "gaps" in payload["metrics"]:
            return _compute_gaps_chunk(payload)
        return _compute_walk_chunk(payload)
    if payload["model"] == "rotor-general":
        return _compute_general_chunk(payload)
    return _compute_rotor_chunk(payload)


def _compute_rotor_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Rotor cells: one deterministic lane each, batch ring kernel.

    Sparse cover-only chunks take the serial dict-engine path instead
    — identical results, better constants when agents are sparse (see
    :func:`_prefer_serial_covers`).
    """
    n = payload["n"]
    max_rounds = payload["max_rounds"]
    metrics: Sequence[str] = payload["metrics"]
    compact_ratio = payload.get("compact_ratio", DEFAULT_COMPACT_RATIO)
    configs = [cell_from_dict(data) for data in payload["configs"]]
    if list(metrics) == ["cover"] and _prefer_serial_covers(n, configs):
        return _compute_rotor_covers_serial(n, max_rounds, configs)
    built = [config.build() for config in configs]
    pointers, counts = lanes_from_configs(
        n, [(directions, agents) for agents, directions in built]
    )

    out: list[dict] = [{} for _ in configs]
    if "cover" in metrics:
        kernel = BatchRingKernel(n, pointers, counts)
        covers = kernel.run_until_covered(max_rounds, strict=False)
        for b, cover in enumerate(covers):
            out[b]["cover"] = int(cover) if cover >= 0 else None
    if "stabilization" in metrics or "return" in metrics:
        cycles = batch_limit_cycles(
            n, pointers, counts, max_rounds, strict=False,
            compact_ratio=compact_ratio,
        )
        resolved = cycles.periods > 0
        if "stabilization" in metrics:
            for b in range(len(configs)):
                confirmed = bool(resolved[b])
                out[b]["preperiod"] = (
                    int(cycles.preperiods[b]) if confirmed else None
                )
                out[b]["period"] = (
                    int(cycles.periods[b]) if confirmed else None
                )
        if "return" in metrics:
            for b in range(len(configs)):
                out[b]["worst_gap"] = None
                out[b]["best_gap"] = None
            resolved_lanes = np.flatnonzero(resolved)
            if resolved_lanes.size:
                worst, best = batch_return_gaps(
                    n,
                    pointers[resolved_lanes],
                    counts[resolved_lanes],
                    BatchLimitCycles(
                        preperiods=cycles.preperiods[resolved_lanes],
                        periods=cycles.periods[resolved_lanes],
                    ),
                )
                for i, b in enumerate(resolved_lanes):
                    out[b]["worst_gap"] = float(worst[i])
                    out[b]["best_gap"] = float(best[i])
    return [
        (config.config_hash, metrics_out)
        for config, metrics_out in zip(configs, out)
    ]


def _compute_walk_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Walk cells: fan repetitions into lanes, aggregate mean/CI back.

    Each cell's repetitions run on the derived seeds of
    :meth:`repro.sweep.spec.SweepConfig.rep_seeds`, seed-for-seed
    identical to standalone :class:`repro.randomwalk.ring_walk.
    RingRandomWalks` runs.  A cell whose budget truncates any
    repetition reports ``cover=None`` (the mean of a censored sample
    would be biased); the repetition count and truncation count are
    always recorded.
    """
    n = payload["n"]
    max_rounds = payload["max_rounds"]
    configs = [cell_from_dict(data) for data in payload["configs"]]
    lanes, slices = walk_lanes_from_cells(
        [(config.build_agents(), config.rep_seeds()) for config in configs]
    )
    covers = BatchRingWalks(n, lanes).run_until_covered(
        max_rounds, strict=False
    )
    out: list[tuple[str, dict]] = []
    for config, (start, stop) in zip(configs, slices):
        samples = covers[start:stop]
        truncated = int(np.count_nonzero(samples < 0))
        metrics: dict = {
            "cover_reps": int(stop - start),
            "cover_truncated": truncated,
        }
        if getattr(config, "record_samples", False):
            # Explicit experiment cells keep the raw per-repetition
            # samples so callers can rebuild the exact serial
            # CoverEstimate (mean, std, CI and all).
            metrics["cover_samples"] = [int(value) for value in samples]
        if truncated:
            metrics.update(
                cover=None, cover_std=None,
                cover_ci_low=None, cover_ci_high=None,
            )
        else:
            values = [float(value) for value in samples]
            summary = summarize(values)
            # normal_ci degenerates to (mean, mean) for singletons
            low, high = normal_ci(values)
            metrics.update(
                cover=summary.mean,
                cover_std=summary.std,
                cover_ci_low=low,
                cover_ci_high=high,
            )
        out.append((config.config_hash, metrics))
    return out


def _compute_rotor_covers_serial(
    n: int, max_rounds: int, configs: list
) -> list[tuple[str, dict]]:
    """Few-lane cover chunk on the O(k)-per-round serial ring engine.

    Mirrors the kernel's ``strict=False`` semantics: a cell that does
    not cover within its budget records ``cover=None`` instead of
    failing the chunk.
    """
    from repro.core.ring import RingRotorRouter

    out: list[tuple[str, dict]] = []
    for config in configs:
        agents, directions = config.build()
        engine = RingRotorRouter(n, directions, agents, track_counts=False)
        try:
            cover = int(engine.run_until_covered(max_rounds))
        except RuntimeError:
            cover = None
        out.append((config.config_hash, {"cover": cover}))
    return out


def _compute_gaps_chunk(payload: dict) -> list[tuple[str, dict]]:
    """Walk gap-statistics cells: one seeded measurement per cell.

    Gap cells have no lane-sharing structure (each is one k-walker
    stream observed at one node), so the chunk simply evaluates the
    vectorized :func:`repro.randomwalk.visits.ring_walk_gap_statistics`
    per cell; chunking still buys multiprocessing and caching.
    """
    from repro.randomwalk.visits import ring_walk_gap_statistics

    out: list[tuple[str, dict]] = []
    for data in payload["configs"]:
        cell = cell_from_dict(data)
        stats = ring_walk_gap_statistics(
            cell.n,
            cell.k,
            node=cell.node,
            observation_rounds=cell.observation_rounds,
            burn_in=cell.burn_in,
            seed=cell.seed,
        )
        out.append((cell.config_hash, stats.to_metrics()))
    return out


#: Serial-engine escape hatch for general chunks: below this many total
#: graph nodes across the chunk's lanes, kernel setup (stacking CSRs,
#: slab tables) costs more than it saves and the chunk runs on the
#: reference engine instead.  Identity-neutral, like the sparse-ring
#: crossover above: both paths are pinned bit-identical.
GENERAL_SERIAL_NODES = 256


def _compute_general_chunk(payload: dict) -> list[tuple[str, dict]]:
    """General-graph rotor cells: batched CSR kernel per chunk.

    The chunk carries its graphs once in a digest-keyed table
    (``payload["graphs"]``); every cell of the chunk becomes one lane
    of a single :class:`repro.sweep.batch_general.BatchGeneralKernel`
    invocation, so all seeds, k-values — and families — advance with
    shared vectorized rounds.  Tiny chunks take the reference-engine
    path instead (see :data:`GENERAL_SERIAL_NODES`).
    """
    graphs = payload["graphs"]
    cells = [
        cell_from_dict(data, graphs=graphs) for data in payload["configs"]
    ]
    if sum(cell.n for cell in cells) <= GENERAL_SERIAL_NODES:
        return _compute_general_serial(cells)
    from repro.sweep.batch_general import batch_general_covers

    covers = batch_general_covers(
        [
            (cell.csr(), cell.ports, cell.agents, cell.max_rounds)
            for cell in cells
        ],
        strict=False,
    )
    return [
        (cell.config_hash, {"cover": int(c) if c >= 0 else None})
        for cell, c in zip(cells, covers)
    ]


def _compute_general_serial(cells: list) -> list[tuple[str, dict]]:
    """Small general chunks on the reference engine, one cell at a time.

    Mirrors the kernel's ``strict=False`` semantics: a cell that does
    not cover within its budget records ``cover=None``.
    """
    from repro.core.engine import MultiAgentRotorRouter
    from repro.graphs.base import PortLabeledGraph

    out: list[tuple[str, dict]] = []
    graph = None
    graph_ports = None
    for cell in cells:
        if graph is None or cell.graph_ports is not graph_ports:
            # Cells were serialized from validated graphs.
            graph = PortLabeledGraph(cell.graph_ports, validate=False)
            graph_ports = cell.graph_ports
        engine = MultiAgentRotorRouter(
            graph, list(cell.ports), list(cell.agents)
        )
        try:
            cover = engine.run_until_covered(cell.max_rounds)
        except RuntimeError:
            cover = None
        out.append((cell.config_hash, {"cover": cover}))
    return out


def _plan_chunks(
    misses: list,
    chunk_lanes: int,
    walk_chunk_walkers: int = DEFAULT_WALK_CHUNK_WALKERS,
    compact_ratio: float = DEFAULT_COMPACT_RATIO,
    jobs: int = 1,
) -> list[dict]:
    """Group misses by (model, n, budget, metrics); slice into payloads.

    The metric tuple is part of the group key: a chunk's payload
    carries exactly one metric set, so heterogeneous miss lists can
    never compute (and cache) the wrong metrics for some of their
    cells.  Walk chunks are additionally split by total walker count
    (``Σ k·repetitions``), which bounds the walk kernel's block-buffer
    memory regardless of how many repetitions a cell fans out into.
    ``compact_ratio`` rides along in every rotor payload to tune the
    limit-cycle pipeline's lane compaction.

    General-graph cells group together regardless of size or budget —
    the CSR kernel steps heterogeneous lanes natively, and the more
    lanes share one invocation, the better the long single-agent tails
    amortize — ordered by graph digest so every chunk's cells cluster
    by graph and its digest-keyed graph table (``payload["graphs"]``,
    one :class:`~repro.graphs.base.GraphCSR` per distinct graph) stays
    small.  With ``jobs <= 1`` the whole group is one chunk (splitting
    buys nothing in-process); parallel runs split it ``2·jobs`` ways,
    floored by ``chunk_lanes``.
    """
    groups: dict[tuple[str, int, int, tuple[str, ...]], list] = {}
    for config in misses:
        if config.model == "rotor-general":
            # One group: lane budgets/sizes are per-cell in the kernel.
            key = (config.model, 0, 0, tuple(config.metrics))
        else:
            key = (
                config.model, config.n, config.max_rounds,
                tuple(config.metrics),
            )
        groups.setdefault(key, []).append(config)
    payloads = []
    for (model, n, max_rounds, metrics), members in sorted(groups.items()):
        if model == "rotor-general":
            # Stable, so same-graph cells keep their miss order.
            members = sorted(members, key=lambda cell: cell.graph_digest)
        for chunk in _slice_chunks(
            model, members, chunk_lanes, walk_chunk_walkers, jobs
        ):
            payload = {
                "model": model,
                "n": n,
                "max_rounds": max_rounds,
                "metrics": list(metrics),
                "compact_ratio": compact_ratio,
                "configs": [config.to_dict() for config in chunk],
            }
            if model == "rotor-general":
                payload["max_rounds"] = max(
                    config.max_rounds for config in chunk
                )
                payload["graphs"] = {
                    config.graph_digest: config.csr() for config in chunk
                }
            payloads.append(payload)
    return payloads


def _slice_chunks(
    model: str,
    members: list,
    chunk_lanes: int,
    walk_chunk_walkers: int,
    jobs: int = 1,
) -> list[list]:
    """Split one group's members into kernel-sized chunks."""
    if model == "rotor-general":
        # Lane sharing is the whole point of the general kernel: only
        # split when worker processes can actually consume the chunks.
        if jobs <= 1:
            return [members]
        size = max(chunk_lanes, -(-len(members) // (2 * jobs)))
        return [
            members[start:start + size]
            for start in range(0, len(members), size)
        ]
    if model != "walk":
        return [
            members[start:start + chunk_lanes]
            for start in range(0, len(members), chunk_lanes)
        ]
    chunks: list[list] = []
    current: list = []
    walkers = 0
    for config in members:
        weight = config.k * config.repetitions
        if current and (
            len(current) >= chunk_lanes
            or walkers + weight > walk_chunk_walkers
        ):
            chunks.append(current)
            current, walkers = [], 0
        current.append(config)
        walkers += weight
    if current:
        chunks.append(current)
    return chunks


def stderr_progress(done: int, total: int) -> None:
    """Default progress reporter: one status line on stderr."""
    end = "\n" if done == total else "\r"
    print(f"sweep: {done}/{total} configurations", file=sys.stderr, end=end)


def run_cells(
    cells: Sequence,
    jobs: int = 1,
    cache_dir: str | None = None,
    progress: ProgressFn | None = None,
    chunk_lanes: int = DEFAULT_CHUNK_LANES,
    walk_chunk_walkers: int = DEFAULT_WALK_CHUNK_WALKERS,
    compact_ratio: float = DEFAULT_COMPACT_RATIO,
) -> tuple[dict[str, dict], set[str]]:
    """Execute a flat cell list: cache probe, then batched chunks.

    The workhorse under both :func:`run_sweep` (scenario grids) and the
    analysis backend (:mod:`repro.analysis.backend` explicit experiment
    cells).  ``cells`` may mix models and cell kinds — anything
    exposing the sweep-cell surface (``model``/``n``/``max_rounds``/
    ``metrics``/``k``/``repetitions``/``config_hash``/``to_dict``)
    schedules; duplicate hashes are computed once.

    Returns ``(metrics_by_hash, cached_hashes)``: every requested
    hash's metrics, plus the subset served from the cache.
    """
    if jobs < 0:
        raise ValueError(f"jobs must be non-negative, got {jobs}")
    if chunk_lanes < 1:
        raise ValueError(f"chunk_lanes must be positive, got {chunk_lanes}")
    if walk_chunk_walkers < 1:
        raise ValueError(
            f"walk_chunk_walkers must be positive, got {walk_chunk_walkers}"
        )
    _check_compact_ratio(compact_ratio)
    cache = ResultCache(cache_dir) if cache_dir else None
    total = len({cell.config_hash for cell in cells})

    metrics_by_hash: dict[str, dict] = {}
    cached_hashes: set[str] = set()
    misses: list = []
    seen: set[str] = set()
    for cell in cells:
        if cell.config_hash in seen:
            continue
        seen.add(cell.config_hash)
        entry = cache.get(cell) if cache is not None else None
        if entry is not None:
            metrics_by_hash[cell.config_hash] = entry
            cached_hashes.add(cell.config_hash)
        else:
            misses.append(cell)
    done = total - len(misses)
    if progress:
        progress(done, total)

    by_hash = {cell.config_hash: cell for cell in misses}
    payloads = _plan_chunks(
        misses, chunk_lanes, walk_chunk_walkers, compact_ratio, jobs
    )
    if payloads:
        if jobs > 1:
            with multiprocessing.Pool(processes=jobs) as pool:
                chunk_results = pool.imap_unordered(compute_chunk, payloads)
                _collect(
                    chunk_results, metrics_by_hash, by_hash, cache,
                    done, total, progress,
                )
        else:
            _collect(
                map(compute_chunk, payloads), metrics_by_hash, by_hash,
                cache, done, total, progress,
            )
    return metrics_by_hash, cached_hashes


def run_sweep(
    spec: ScenarioSpec,
    jobs: int = 1,
    cache_dir: str | None = None,
    progress: ProgressFn | None = None,
    chunk_lanes: int | None = None,
    walk_chunk_walkers: int | None = None,
    compact_ratio: float | None = None,
) -> SweepResult:
    """Execute a sweep: cache probe, then parallel batched simulation.

    ``jobs <= 1`` runs chunks in-process; otherwise a multiprocessing
    pool of ``jobs`` workers consumes them.  ``progress`` (if given) is
    called with ``(done, total)`` configuration counts as results
    arrive, cache hits included.

    The scheduling knobs — ``chunk_lanes`` (lanes per kernel chunk),
    ``walk_chunk_walkers`` (walker cap per walk chunk) and
    ``compact_ratio`` (the limit-cycle pipeline's lane-compaction
    threshold) — resolve explicit argument > scenario hint > module
    default, so benchmarks and the CLI can sweep them without editing
    scenarios.  None of them affects any result or cache identity,
    only how the work is batched.
    """
    if chunk_lanes is None:
        chunk_lanes = spec.chunk_lanes or DEFAULT_CHUNK_LANES
    if walk_chunk_walkers is None:
        walk_chunk_walkers = (
            spec.walk_chunk_walkers or DEFAULT_WALK_CHUNK_WALKERS
        )
    if compact_ratio is None:
        compact_ratio = (
            spec.compact_ratio
            if spec.compact_ratio is not None
            else DEFAULT_COMPACT_RATIO
        )
    started = time.perf_counter()
    configs = spec.configs()  # spec expansion guarantees unique cells
    metrics_by_hash, cached_hashes = run_cells(
        configs,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        chunk_lanes=chunk_lanes,
        walk_chunk_walkers=walk_chunk_walkers,
        compact_ratio=compact_ratio,
    )
    results = [
        ConfigResult(
            config=config,
            metrics=metrics_by_hash[config.config_hash],
            cached=config.config_hash in cached_hashes,
        )
        for config in configs
    ]
    hits = sum(result.cached for result in results)
    return SweepResult(
        spec=spec,
        results=results,
        elapsed=time.perf_counter() - started,
        cache_hits=hits,
        cache_misses=len(results) - hits,
    )


def _collect(
    chunk_results,
    metrics_by_hash: dict[str, dict],
    by_hash: dict[str, SweepConfig],
    cache: ResultCache | None,
    done: int,
    total: int,
    progress: ProgressFn | None,
) -> int:
    for pairs in chunk_results:
        for config_hash, metrics in pairs:
            metrics_by_hash[config_hash] = metrics
            if cache is not None:
                cache.put(by_hash[config_hash], metrics)
            done += 1
        if progress:
            progress(done, total)
    return done
