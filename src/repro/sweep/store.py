"""Pluggable result stores: the sweep cache behind a batched protocol.

The executor's original cache (PR 1) was one JSON file per cell —
portable, inspectable, trivially correct — but every probe paid one
``open``/``json.load``/identity-check per cell, ``__len__`` walked the
whole tree, and a warm ``repro all`` spent its wall clock in syscalls
rather than kernels.  At ROADMAP scale (walk-strategy zoos, general
limit-cycle sweeps: millions of cells) a file-per-cell tree is hopeless
for both latency and concurrent readers.

This module puts the cache behind a small **batched** protocol
(:class:`CacheStore`) with two interchangeable backends:

* :class:`JsonTreeStore` — the original ``<prefix>/<hash>.json`` tree,
  kept bit-compatible (existing cache directories keep working and the
  on-disk entry layout is unchanged).  Opening the store now
  garbage-collects stale ``.tmp.<pid>`` files left behind by crashed
  writers (a live writer's temp file — its pid still runs — is left
  alone), and ``count()`` keeps the tree walk but visits directories
  and files in sorted order.
* :class:`SqliteStore` — a sharded SQLite store: one WAL-mode database
  per ``config_hash`` prefix nibble, each holding a ``cells(hash,
  config, metrics)`` table keyed by the full hash.  A batched probe
  becomes a handful of indexed ``IN (...)`` queries; a chunk's results
  commit in one transaction per shard; ``count()`` is an indexed
  aggregate.  WAL mode lets concurrent processes read while one
  writes, and a generous busy timeout serializes concurrent writers
  instead of failing them.

Both backends serialize exactly the same entry payload — ``{"config":
<identity dict>, "metrics": <metrics dict>}`` canonicalized with
sorted keys (:class:`StoreEntry`) — and an entry is served only under
the hash its canonical identity digests to.  The JSON tree verifies
that on read (a half-written or edited file reports ``corrupt`` and
is recomputed, as it always has); the SQLite store verifies where
rows enter instead — ``put_many`` derives key and config text from
one identity dump, migration re-digests every entry, and WAL
transactions rule out torn rows — so its reads only re-check that the
stored metrics parse.  Reports are therefore bit-identical whichever
backend served them, which the backend-equivalence suite pins.

``migrate_json_to_sqlite`` streams a JSON tree into a SQLite store,
re-verifying each entry's identity hash as it goes; ``store_info``,
``vacuum_store`` and ``verify_store`` back the ``python -m repro
cache`` subcommand.  Corruption self-heals: a probe that reports a
``corrupt`` status leads the executor to ``quarantine_many`` the bad
entries (JSON: file set aside as ``.json.corrupt``; SQLite: row
deleted) before recomputing and overwriting them, and ``repro cache
verify [--repair]`` runs the same check eagerly over every stored row.

The store choice travels inside the cache *spec* string — a plain
directory path selects the JSON tree, a ``sqlite://<dir>`` (or
``json://<dir>``) prefix selects a backend explicitly — so every layer
between the CLI's ``--store`` flag and :func:`repro.sweep.executor.
run_cells` passes a single string through unchanged.
"""

from __future__ import annotations

import bisect
import json
import os
import sqlite3
from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence

from repro import obs

#: Bump when the stored entry payload layout or the SQLite row schema
#: changes, so a store written by older code is never silently read.
#: Pinned (with the row-identity surface below) by ``repro lint``'s
#: I001 lockfile check.
STORE_SCHEMA_VERSION = 1

#: Store backends the spec syntax can name.
STORE_BACKENDS = ("json", "sqlite")

#: Hex digits of ``config_hash`` selecting a SQLite shard: one nibble
#: = 16 shard databases, enough write parallelism for a pool of
#: workers while keeping a cold ``info``/``count`` cheap.
SHARD_PREFIX_LEN = 1

#: Rows per ``IN (...)`` probe query, comfortably under SQLite's
#: default 999-variable limit.
_SELECT_CHUNK = 512

#: Rows per migration transaction.
_MIGRATE_BATCH = 1024


def _canonical(payload: dict) -> str:
    """The one canonical JSON dump used for identities and payloads.

    Identical to the serialization behind ``config_hash``
    (:meth:`repro.sweep.spec.SweepConfig.config_hash`), so a stored
    identity text can be hash-verified by re-digesting it directly.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class StoreEntry:
    """One cached cell as both backends serialize it.

    The identity is the entry's full on-disk surface: the cell's
    canonical ``config`` identity dict plus its ``metrics`` payload.
    Changing these keys (or the dataclass fields) is a store-format
    change and must come with a :data:`STORE_SCHEMA_VERSION` bump —
    rule I001 pins this surface in ``cache_identity.lock``.
    """

    config: dict
    metrics: dict

    def identity(self) -> dict:
        return {
            "config": self.config,
            "metrics": self.metrics,
        }


class CacheStore(Protocol):
    """What the executor needs from a result store.

    ``lookup_many``/``put_many`` are the primary surface — the
    executor probes a whole plan and commits a whole chunk per call —
    with ``lookup``/``put``/``get`` kept as single-cell conveniences
    for tests and tooling.  Statuses are ``"hit"``, ``"miss"`` or
    ``"corrupt"``; corrupt entries are never served and never fail the
    sweep, they are recomputed like misses but counted separately so
    cache rot stays visible.
    """

    backend: str

    def lookup_many(
        self, cells: Sequence
    ) -> tuple[dict[str, dict], dict[str, str]]:
        """Batched probe: ``(metrics_by_hash, status_by_hash)``."""
        ...

    def put_many(self, items: Sequence[tuple[object, dict]]) -> None:
        """Batched write of ``(cell, metrics)`` pairs."""
        ...

    def quarantine_many(self, hashes: Sequence[str]) -> int:
        """Evict known-bad rows so corruption never lingers.

        The executor calls this with every hash ``lookup_many``
        reported ``corrupt`` before recomputing them: the JSON tree
        renames the bad entry file aside (``<hash>.json.corrupt``,
        preserved for forensics, invisible to probes), the SQLite
        store deletes the row.  The recompute's ``put_many`` then
        writes a fresh entry — quarantine-and-overwrite, so a store
        self-heals instead of re-flagging the same rot every run.
        Returns the number of entries actually quarantined.
        """
        ...

    def count(self) -> int:
        """Number of stored entries."""
        ...

    def close(self) -> None:
        """Release any backing resources (idempotent)."""
        ...


def parse_store_spec(spec: str) -> tuple[str, str]:
    """Split a cache spec into ``(backend, directory)``.

    A plain path is the JSON tree (backward compatible); a
    ``<backend>://`` prefix selects explicitly.
    """
    for backend in STORE_BACKENDS:
        prefix = f"{backend}://"
        if spec.startswith(prefix):
            directory = spec[len(prefix):]
            if not directory:
                raise ValueError(f"cache spec {spec!r} names no directory")
            return backend, directory
    if "://" in spec:
        scheme = spec.split("://", 1)[0]
        raise ValueError(
            f"unknown store backend {scheme!r}; known: "
            + ", ".join(STORE_BACKENDS)
        )
    return "json", spec


def format_store_spec(backend: str, directory: str) -> str:
    """The spec string selecting ``backend`` over ``directory``."""
    if backend not in STORE_BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r}; known: "
            + ", ".join(STORE_BACKENDS)
        )
    return directory if backend == "json" else f"{backend}://{directory}"


def open_store(spec: str, backend: str | None = None) -> "CacheStore":
    """Open a result store from a cache spec (or an explicit backend)."""
    if backend is None:
        backend, directory = parse_store_spec(spec)
    else:
        directory = spec
        if backend not in STORE_BACKENDS:
            raise ValueError(
                f"unknown store backend {backend!r}; known: "
                + ", ".join(STORE_BACKENDS)
            )
    if backend == "sqlite":
        return SqliteStore(directory)
    return JsonTreeStore(directory)


def detect_backend(directory: str) -> str:
    """Which backend a cache directory on disk belongs to.

    A directory holding shard databases is a SQLite store; anything
    else (including an empty or absent directory) reads as the JSON
    tree, which is the backward-compatible default.
    """
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return "json"
    if any(
        name.startswith("shard-") and name.endswith(".db") for name in names
    ):
        return "sqlite"
    return "json"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a currently running process."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except (OverflowError, ValueError, OSError):
        return False
    return True


class JsonTreeStore:
    """One JSON file per sweep cell, keyed by its config hash.

    The original executor cache, behind the batched protocol.  Entries
    are ``<hash prefix>/<hash>.json`` holding the cell's identity plus
    its metrics, so a cache directory stays portable, inspectable and
    safely shared between scenarios.  Writes go through a same-
    directory ``.tmp.<pid>`` file and an atomic ``os.replace``;
    opening the store sweeps any such temp file whose writer pid no
    longer runs (a crashed writer's leftovers), counting the sweep in
    the ``cache.tmp_swept`` telemetry counter.
    """

    backend = "json"

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        #: Stale temp files garbage-collected by this open.
        self.swept_on_open = self.sweep_stale_tmp()
        if self.swept_on_open:
            obs.count("cache.tmp_swept", self.swept_on_open)

    def path(self, config_hash: str) -> str:
        return os.path.join(
            self.directory, config_hash[:2], f"{config_hash}.json"
        )

    def get(self, config) -> dict | None:
        """The cached metrics for ``config``, or None on a miss.

        Unreadable or mismatched entries count as misses (and are
        recomputed) rather than failing the sweep.
        """
        return self.lookup(config)[0]

    def lookup(self, config) -> tuple[dict | None, str]:
        """Cached metrics plus a probe status: hit, miss or corrupt.

        ``corrupt`` covers unreadable files, malformed JSON, identity
        mismatches and bad metric payloads — all recomputed exactly
        like misses, but telemetry counts them separately so cache rot
        is visible instead of silently re-simulated.
        """
        path = self.path(config.config_hash)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None, "miss"
        except (OSError, ValueError):
            return None, "corrupt"
        if (
            not isinstance(entry, dict)
            or entry.get("config") != config.identity()
        ):
            return None, "corrupt"
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            return None, "corrupt"
        return metrics, "hit"

    def put(self, config, metrics: dict) -> str:
        path = self.path(config.config_hash)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = StoreEntry(config=config.identity(), metrics=metrics)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload.identity(), handle, sort_keys=True)
        os.replace(tmp, path)  # atomic: concurrent writers agree anyway
        return path

    def lookup_many(
        self, cells: Sequence
    ) -> tuple[dict[str, dict], dict[str, str]]:
        """Batched probe — one file open per cell (the tree's nature).

        The protocol surface matches :class:`SqliteStore`; the JSON
        backend simply cannot do better than per-cell I/O, which is
        exactly the bottleneck ``benchmarks/bench_store.py`` measures.
        """
        found: dict[str, dict] = {}
        statuses: dict[str, str] = {}
        for cell in cells:
            metrics, status = self.lookup(cell)
            statuses[cell.config_hash] = status
            if metrics is not None:
                found[cell.config_hash] = metrics
        return found, statuses

    def put_many(self, items: Sequence[tuple[object, dict]]) -> None:
        for config, metrics in items:
            self.put(config, metrics)

    def quarantine_many(self, hashes: Sequence[str]) -> int:
        """Move bad entry files aside (``<hash>.json.corrupt``).

        The quarantined copy keeps the evidence inspectable but is
        invisible to every probe and count (only ``*.json`` files are
        entries); a recompute's ``put`` writes a clean file under the
        original name.  Racing quarantiners agree (atomic rename).
        """
        quarantined = 0
        for config_hash in hashes:
            path = self.path(config_hash)
            try:
                os.replace(path, f"{path}.corrupt")
            except OSError:
                continue  # already quarantined or never written
            quarantined += 1
        return quarantined

    def count(self) -> int:
        """Stored entries, via a sorted (D002-clean) tree walk."""
        total = 0
        for _, dirs, files in os.walk(self.directory):
            dirs.sort()
            total += sum(name.endswith(".json") for name in sorted(files))
        return total

    def __len__(self) -> int:
        return self.count()

    def _tmp_files(self) -> Iterator[str]:
        """Paths of ``.tmp.<pid>`` leftovers, in sorted walk order."""
        for root, dirs, files in os.walk(self.directory):
            dirs.sort()
            for name in sorted(files):
                if ".tmp." in name:
                    yield os.path.join(root, name)

    def sweep_stale_tmp(self) -> int:
        """Remove temp files whose writer process is gone.

        A ``.tmp.<pid>`` file whose pid still runs belongs to a live
        concurrent writer and is left untouched; one with an unknown
        or dead pid is a crashed writer's leftover and is unlinked.
        Returns the number of files removed.
        """
        swept = 0
        for path in self._tmp_files():
            suffix = path.rsplit(".tmp.", 1)[-1]
            try:
                pid = int(suffix)
            except ValueError:
                continue  # not our naming scheme; leave it alone
            if _pid_alive(pid):
                continue
            try:
                os.unlink(path)
            except OSError:
                continue  # raced with another sweeper
            swept += 1
        return swept

    def count_tmp(self) -> int:
        """Leftover temp files currently present (for ``cache info``)."""
        return sum(1 for _ in self._tmp_files())

    def close(self) -> None:
        return None


class SqliteStore:
    """Sharded SQLite result store: batched, indexed, WAL-concurrent.

    ``shard-<nibble>.db`` databases (one per leading ``config_hash``
    hex digit) each hold::

        CREATE TABLE cells (
            hash    TEXT PRIMARY KEY,   -- the cell's config_hash
            config  TEXT NOT NULL,      -- canonical identity JSON
            metrics TEXT NOT NULL       -- canonical metrics JSON
        )

    with :data:`STORE_SCHEMA_VERSION` pinned in ``PRAGMA
    user_version`` — a shard written by a different store schema
    refuses to open rather than mis-serving rows.  Config integrity is
    enforced where rows enter the store: ``put_many`` derives key and
    ``config`` text from the same canonical identity dump, and
    migration re-digests every entry — while WAL journaling rules out
    the JSON tree's half-written-file failure mode entirely.  Probes
    therefore fetch only ``(hash, metrics)`` and report ``corrupt``
    when the stored metrics text does not parse back to a dict, which
    keeps the batched warm read free of per-row identity dumps.

    WAL journaling gives single-writer/many-readers concurrency per
    shard; writers across processes serialize on SQLite's file lock
    with a 30 s busy timeout.  ``put_many`` groups rows by shard and
    commits each group as one ``BEGIN IMMEDIATE`` transaction.
    """

    backend = "sqlite"

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._conns: dict[str, sqlite3.Connection] = {}

    # -- shard plumbing -------------------------------------------------
    def shard_of(self, config_hash: str) -> str:
        return config_hash[:SHARD_PREFIX_LEN]

    def shard_path(self, shard: str) -> str:
        return os.path.join(self.directory, f"shard-{shard}.db")

    def shards_on_disk(self) -> list[str]:
        """Shard ids with a database file present, sorted."""
        shards = []
        for name in sorted(os.listdir(self.directory)):
            if name.startswith("shard-") and name.endswith(".db"):
                shards.append(name[len("shard-"):-len(".db")])
        return shards

    def _conn(self, shard: str) -> sqlite3.Connection:
        conn = self._conns.get(shard)
        if conn is not None:
            return conn
        path = self.shard_path(shard)
        conn = sqlite3.connect(path, timeout=30.0)
        conn.isolation_level = None  # explicit BEGIN/COMMIT below
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS cells ("
                    "hash TEXT PRIMARY KEY, "
                    "config TEXT NOT NULL, "
                    "metrics TEXT NOT NULL)"
                )
                conn.execute(
                    f"PRAGMA user_version = {int(STORE_SCHEMA_VERSION)}"
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        elif version != STORE_SCHEMA_VERSION:
            conn.close()
            raise ValueError(
                f"store shard {path!r} carries schema {version}, this "
                f"code expects {STORE_SCHEMA_VERSION}; re-create or "
                "migrate the cache"
            )
        self._conns[shard] = conn
        return conn

    # -- protocol surface -----------------------------------------------
    def lookup_many(
        self, cells: Sequence
    ) -> tuple[dict[str, dict], dict[str, str]]:
        # The whole probe runs as a few C-level passes per shard: sort
        # the hashes once and slice contiguous shard ranges with bisect
        # (instead of a per-cell grouping loop), fetch each shard's
        # rows as TWO ``json_group_array`` strings (no per-row tuple
        # materialization), then parse all metrics with one
        # ``json.loads``.  Per-row Python only runs on the rare
        # corrupt-row fallback.
        all_hashes = [cell.config_hash for cell in cells]
        ordered = sorted(set(all_hashes))
        found: dict[str, dict] = {}
        corrupt: list[str] = []
        for shard in self.shards_on_disk():
            # Hashes sharing the shard prefix form one contiguous run
            # of the sorted list: [shard, next-prefix).
            lo = bisect.bisect_left(ordered, shard)
            hi = bisect.bisect_left(
                ordered, shard[:-1] + chr(ord(shard[-1]) + 1)
            )
            if lo < hi:
                self._lookup_shard(shard, ordered[lo:hi], found, corrupt)
        if len(found) == len(ordered):
            statuses = dict.fromkeys(all_hashes, "hit")
        else:
            statuses = dict.fromkeys(all_hashes, "miss")
            statuses.update(dict.fromkeys(found, "hit"))
            statuses.update(dict.fromkeys(corrupt, "corrupt"))
        return found, statuses

    def _lookup_shard(
        self,
        shard: str,
        hashes: list[str],
        found: dict[str, dict],
        corrupt: list[str],
    ) -> None:
        """Resolve one shard's probed hashes into ``found``/``corrupt``.

        A probe covering most of the shard reads it as one sequential
        scan (a warm rerun's shape — index seeks would cost more than
        the rows they skip); a sparse probe seeks via chunked ``IN``
        lists.  Either way rows arrive as two aggregated JSON arrays.
        """
        conn = self._conn(shard)
        arrays: list[tuple[str, str]] = []
        scanned = False
        try:
            total = conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]
            if 2 * len(hashes) >= total:
                scanned = True
                arrays.append(
                    conn.execute(
                        "SELECT json_group_array(hash), "
                        "json_group_array(json(metrics)) FROM cells"
                    ).fetchone()
                )
            else:
                for start in range(0, len(hashes), _SELECT_CHUNK):
                    chunk = hashes[start:start + _SELECT_CHUNK]
                    marks = ",".join("?" * len(chunk))
                    arrays.append(
                        conn.execute(
                            "SELECT json_group_array(hash), "
                            "json_group_array(json(metrics)) FROM cells "
                            f"WHERE hash IN ({marks})",
                            chunk,
                        ).fetchone()
                    )
            got_hashes = json.loads(
                f"[{','.join(a[1:-1] for a, _ in arrays if a != '[]')}]"
            )
            got_metrics = json.loads(
                f"[{','.join(m[1:-1] for _, m in arrays if m != '[]')}]"
            )
        except (sqlite3.OperationalError, ValueError):
            # A stored metrics text that is not valid JSON aborts the
            # aggregate (sqlite's json() raises) — and some builds lack
            # the JSON functions entirely.  Re-fetch raw rows and sort
            # the good from the corrupt one by one.
            self._lookup_shard_rows(conn, hashes, found, corrupt)
            return
        if scanned:
            probe = set(hashes)
            entries = {
                h: m for h, m in zip(got_hashes, got_metrics) if h in probe
            }
        else:
            entries = dict(zip(got_hashes, got_metrics))
        if all(type(m) is dict for m in entries.values()):
            found.update(entries)
        else:
            for row_hash, metrics in entries.items():
                if type(metrics) is dict:
                    found[row_hash] = metrics
                else:
                    corrupt.append(row_hash)

    def _lookup_shard_rows(
        self,
        conn: sqlite3.Connection,
        hashes: list[str],
        found: dict[str, dict],
        corrupt: list[str],
    ) -> None:
        """Row-at-a-time fallback that isolates unparseable rows."""
        for start in range(0, len(hashes), _SELECT_CHUNK):
            chunk = hashes[start:start + _SELECT_CHUNK]
            marks = ",".join("?" * len(chunk))
            rows = conn.execute(
                f"SELECT hash, metrics FROM cells WHERE hash IN ({marks})",
                chunk,
            ).fetchall()
            for row_hash, metrics_text in rows:
                try:
                    metrics = json.loads(metrics_text)
                except ValueError:
                    corrupt.append(row_hash)
                    continue
                if type(metrics) is dict:
                    found[row_hash] = metrics
                else:
                    corrupt.append(row_hash)

    def lookup(self, config) -> tuple[dict | None, str]:
        found, statuses = self.lookup_many([config])
        return (
            found.get(config.config_hash),
            statuses[config.config_hash],
        )

    def get(self, config) -> dict | None:
        return self.lookup(config)[0]

    def put_many(self, items: Sequence[tuple[object, dict]]) -> None:
        by_shard: dict[str, list[tuple[str, str, str]]] = {}
        for config, metrics in items:
            entry = StoreEntry(config=config.identity(), metrics=metrics)
            by_shard.setdefault(self.shard_of(config.config_hash), []).append(
                (
                    config.config_hash,
                    _canonical(entry.config),
                    _canonical(entry.metrics),
                )
            )
        for shard in sorted(by_shard):
            self._put_rows(shard, by_shard[shard])

    def _put_rows(
        self, shard: str, rows: Sequence[tuple[str, str, str]]
    ) -> None:
        """One transaction inserting (hash, config, metrics) rows."""
        conn = self._conn(shard)
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.executemany(
                "INSERT OR REPLACE INTO cells (hash, config, metrics) "
                "VALUES (?, ?, ?)",
                rows,
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def put(self, config, metrics: dict) -> None:
        self.put_many([(config, metrics)])

    def quarantine_many(self, hashes: Sequence[str]) -> int:
        """Delete bad rows so the next probe is a clean miss.

        WAL journaling already rules out torn rows, so a corrupt row
        means external tampering; unlike the JSON tree there is no
        per-entry file to set aside, and the deleted row's replacement
        arrives with the recompute's ``put_many``.
        """
        by_shard: dict[str, list[str]] = {}
        for config_hash in hashes:
            by_shard.setdefault(self.shard_of(config_hash), []).append(
                config_hash
            )
        quarantined = 0
        for shard in sorted(by_shard):
            if not os.path.exists(self.shard_path(shard)):
                continue
            conn = self._conn(shard)
            conn.execute("BEGIN IMMEDIATE")
            try:
                for start in range(0, len(by_shard[shard]), _SELECT_CHUNK):
                    chunk = by_shard[shard][start:start + _SELECT_CHUNK]
                    marks = ",".join("?" * len(chunk))
                    cursor = conn.execute(
                        f"DELETE FROM cells WHERE hash IN ({marks})", chunk
                    )
                    quarantined += cursor.rowcount
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        return quarantined

    def count(self) -> int:
        """Stored rows across shards — one indexed aggregate each."""
        total = 0
        for shard in self.shards_on_disk():
            conn = self._conn(shard)
            total += conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]
        return total

    def __len__(self) -> int:
        return self.count()

    def vacuum(self) -> int:
        """``VACUUM`` every shard; returns the number vacuumed."""
        shards = self.shards_on_disk()
        for shard in shards:
            self._conn(shard).execute("VACUUM")
        return len(shards)

    def close(self) -> None:
        conns, self._conns = self._conns, {}
        for conn in conns.values():
            conn.close()


# ----------------------------------------------------------------------
# tooling: migration, info, vacuum (the `repro cache` subcommand)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one JSON-tree → SQLite migration."""

    migrated: int
    corrupt: int

    def summary_line(self) -> str:
        return f"migrated={self.migrated} corrupt={self.corrupt}"


def _iter_json_entries(directory: str) -> Iterator[tuple[str, str]]:
    """``(config_hash, path)`` of every entry file, sorted walk order."""
    for root, dirs, files in os.walk(directory):
        dirs.sort()
        for name in sorted(files):
            if name.endswith(".json"):
                yield name[:-len(".json")], os.path.join(root, name)


def migrate_json_to_sqlite(
    source_dir: str, dest_dir: str, batch: int = _MIGRATE_BATCH
) -> MigrationReport:
    """Stream a JSON tree into a SQLite store, verifying each entry.

    Every entry is re-verified on the way through: the canonical dump
    of its stored identity must digest back to its filename hash, and
    the payload must carry dict-shaped ``config`` and ``metrics``
    blocks.  Entries failing either check are counted ``corrupt`` and
    skipped — a migrated store never contains rows the source tree
    would not itself have served.  Rows commit in batches of
    ``batch`` (one transaction per shard per batch).
    """
    import hashlib

    source = JsonTreeStore(source_dir)
    dest = SqliteStore(dest_dir)
    migrated = corrupt = 0
    pending: dict[str, list[tuple[str, str, str]]] = {}
    pending_rows = 0

    def flush() -> None:
        nonlocal pending_rows
        for shard in sorted(pending):
            dest._put_rows(shard, pending[shard])
        pending.clear()
        pending_rows = 0

    try:
        for config_hash, path in _iter_json_entries(source.directory):
            try:
                with open(path) as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                corrupt += 1
                continue
            config = entry.get("config") if isinstance(entry, dict) else None
            metrics = entry.get("metrics") if isinstance(entry, dict) else None
            if not isinstance(config, dict) or not isinstance(metrics, dict):
                corrupt += 1
                continue
            config_text = _canonical(config)
            digest = hashlib.sha256(
                config_text.encode("utf-8")
            ).hexdigest()
            if digest != config_hash:
                corrupt += 1
                continue
            pending.setdefault(dest.shard_of(config_hash), []).append(
                (config_hash, config_text, _canonical(metrics))
            )
            pending_rows += 1
            migrated += 1
            if pending_rows >= batch:
                flush()
        flush()
    finally:
        dest.close()
    return MigrationReport(migrated=migrated, corrupt=corrupt)


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of one full-store integrity scan."""

    backend: str
    checked: int
    corrupt: int
    repaired: int

    @property
    def ok(self) -> bool:
        """Whether the store ended the scan free of bad entries."""
        return self.corrupt == self.repaired

    def summary_line(self) -> str:
        return (
            f"backend={self.backend} checked={self.checked} "
            f"corrupt={self.corrupt} repaired={self.repaired}"
        )


def _entry_is_sound(config_hash: str, config, metrics) -> bool:
    """Whether a stored entry's identity re-digests to its key."""
    import hashlib

    if not isinstance(config, dict) or not isinstance(metrics, dict):
        return False
    digest = hashlib.sha256(
        _canonical(config).encode("utf-8")
    ).hexdigest()
    return digest == config_hash


def verify_store(directory: str, repair: bool = False) -> VerifyReport:
    """Re-digest every stored row; optionally evict the bad ones.

    The deep counterpart of the probe-time corruption checks: every
    entry of either backend is re-verified end to end — the canonical
    dump of its stored ``config`` must digest back to the hash it is
    keyed under, and its ``metrics`` must parse to a dict — exactly
    the invariant ``put_many``/migration enforce at write time, so a
    clean scan certifies the store serves only rows it would itself
    have written.  ``repair=True`` quarantines each bad entry through
    the backend's own semantics (JSON: file set aside as
    ``.json.corrupt``; SQLite: row deleted) so the next sweep
    recomputes and overwrites it.  Backs ``repro cache verify``.
    """
    backend = detect_backend(directory)
    checked = corrupt = repaired = 0
    if backend == "json":
        store = JsonTreeStore(directory)
        for config_hash, path in _iter_json_entries(store.directory):
            checked += 1
            sound = False
            try:
                with open(path) as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                entry = None
            if isinstance(entry, dict):
                sound = _entry_is_sound(
                    config_hash, entry.get("config"), entry.get("metrics")
                )
            if sound:
                continue
            corrupt += 1
            if repair:
                repaired += store.quarantine_many([config_hash])
        return VerifyReport(
            backend=backend, checked=checked, corrupt=corrupt,
            repaired=repaired,
        )
    store = SqliteStore(directory)
    try:
        bad: list[str] = []
        for shard in store.shards_on_disk():
            conn = store._conn(shard)
            for row_hash, config_text, metrics_text in conn.execute(
                "SELECT hash, config, metrics FROM cells ORDER BY hash"
            ):
                checked += 1
                try:
                    config = json.loads(config_text)
                    metrics = json.loads(metrics_text)
                except ValueError:
                    config = metrics = None
                if not _entry_is_sound(row_hash, config, metrics):
                    bad.append(row_hash)
        corrupt = len(bad)
        if repair and bad:
            repaired = store.quarantine_many(bad)
    finally:
        store.close()
    return VerifyReport(
        backend=backend, checked=checked, corrupt=corrupt, repaired=repaired
    )


def store_info(directory: str) -> dict:
    """Backend, entry count and layout facts of a cache directory."""
    backend = detect_backend(directory)
    info: dict = {"backend": backend, "directory": directory}
    size = 0
    for root, dirs, files in os.walk(directory):
        dirs.sort()
        for name in sorted(files):
            try:
                size += os.path.getsize(os.path.join(root, name))
            except OSError:
                continue
    info["bytes"] = size
    if backend == "sqlite":
        store = SqliteStore(directory)
        try:
            info["entries"] = store.count()
            info["shards"] = len(store.shards_on_disk())
            info["schema"] = STORE_SCHEMA_VERSION
        finally:
            store.close()
    else:
        store = JsonTreeStore(directory)
        info["entries"] = store.count()
        info["tmp_files"] = store.count_tmp()
    return info


def vacuum_store(directory: str) -> dict:
    """Compact a cache directory; returns what was done.

    SQLite stores get a per-shard ``VACUUM``; the JSON tree's
    equivalent maintenance is sweeping crashed writers' temp files
    (which store opening already performs — this reports the count).
    """
    backend = detect_backend(directory)
    if backend == "sqlite":
        store = SqliteStore(directory)
        try:
            return {"backend": backend, "vacuumed_shards": store.vacuum()}
        finally:
            store.close()
    store = JsonTreeStore(directory)  # opening sweeps stale temp files
    return {"backend": backend, "swept_tmp": store.swept_on_open}
