"""Named sweep scenarios: the paper's experiments as declarative specs.

Each entry maps a name (used by ``python -m repro sweep <name>``) to a
builder producing a :class:`repro.sweep.spec.ScenarioSpec` at full or
``--quick`` size.  The registered scenarios re-express the repo's
experiment scripts on top of the sweep subsystem:

* ``table1`` — the rotor-router cover rows of Table 1 (worst placement
  all-on-one/toward-node-0, best placement equally-spaced under the
  negative adversary) swept over k;
* ``table1_full`` — the actual Table 1: both models (rotor-router and
  k random walks) over both placements, walk cells as mean ± CI over
  seeded repetitions, with per-k speed-up and walk/rotor ratio tables
  joined from the same sweep;
* ``speedup`` — the speed-up study ``S(k) = C(n,1)/C(n,k)`` for both
  models (the paper's Θ(k²) rotor vs Θ(k²/log²k) walk contrast,
  Theorem 5), anchored by the k = 1 baseline cell;
* ``stabilization`` — the time-to-limit-cycle extension study:
  preperiod, period and in-cycle return gaps across initialization
  families including random ones;
* ``general_speedup`` — the Yanovski-style speed-up grid on general
  graph families (torus, hypercube, lollipop, G(n,p)): every
  (family, k, seed) cell is one lane of the batched CSR kernel, with
  the aggregate layer joining the k = 1 baselines into S(k) curves;
* ``cover_scaling`` — a wide (n, k, family) cover-time grid the serial
  experiment scripts never attempt in one run.

New workloads register with :func:`register`; the CLI lists whatever
is here.
"""

from __future__ import annotations

from typing import Callable

from repro.sweep.spec import GeneralScenarioSpec, InitFamily, ScenarioSpec

ScenarioBuilder = Callable[[bool], ScenarioSpec]

_SCENARIOS: dict[str, tuple[ScenarioBuilder, str]] = {}


def register(
    name: str, description: str
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Register a scenario builder under ``name`` for the CLI."""

    def wrap(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = (builder, description)
        return builder

    return wrap


def scenario_names() -> list[str]:
    return list(_SCENARIOS)


def scenario_description(name: str) -> str:
    return _SCENARIOS[name][1]


def scenario(name: str, quick: bool = False) -> ScenarioSpec:
    """Build the named scenario at full (default) or quick size."""
    try:
        builder, _ = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep scenario {name!r}; known: {scenario_names()}"
        ) from None
    return builder(quick)


@register("table1", "Table 1 rotor-router cover times (worst + best placement)")
def _table1(quick: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="table1",
        ns=(128,) if quick else (512,),
        ks=(2, 4, 8) if quick else (2, 4, 8, 16, 32),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
        ),
        metrics=("cover",),
        description="deterministic cover-time columns of Table 1",
    )


#: The two Table 1 placements: the Theorem 1 worst case and the
#: Theorem 3 best placement under the Theorem 4 pointer adversary
#: (walk cells ignore the pointer half).
_TABLE1_FAMILIES = (
    InitFamily("all_on_one", "toward_node0"),
    InitFamily("equally_spaced", "negative"),
)


@register(
    "table1_full",
    "Table 1, both models: rotor-router vs k random walks (mean ± CI)",
)
def _table1_full(quick: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="table1_full",
        ns=(128,) if quick else (512,),
        # k = 1 anchors the speed-up column S(k) = C(n,1)/C(n,k).
        ks=(1, 2, 4, 8) if quick else (1, 2, 4, 8, 16, 32),
        families=_TABLE1_FAMILIES,
        metrics=("cover",),
        models=("rotor", "walk"),
        repetitions=5 if quick else 10,
        description=(
            "cover-time columns of Table 1 for both models, joined "
            "into per-k speed-ups and walk/rotor ratios"
        ),
    )


@register(
    "speedup",
    "speed-up S(k)=C(n,1)/C(n,k) for both models (Theorem 5 contrast)",
)
def _speedup(quick: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="speedup",
        ns=(64,) if quick else (256, 512),
        ks=(1, 2, 4) if quick else (1, 2, 4, 8, 16, 32),
        families=_TABLE1_FAMILIES,
        metrics=("cover",),
        models=("rotor", "walk"),
        repetitions=5 if quick else 10,
        description=(
            "k-agent speed-up of both models: Θ(k²) rotor best case "
            "vs Θ(k²/log²k) random walks"
        ),
    )


@register("stabilization", "time-to-limit-cycle + return gaps across inits")
def _stabilization(quick: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="stabilization",
        ns=(32, 64) if quick else (64, 128, 256),
        ks=(4,),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
            InitFamily("equally_spaced", "positive"),
            InitFamily("random", "random"),
        ),
        metrics=("stabilization", "return"),
        seeds=(0, 1),
        description="preperiod/period (Brent) and in-cycle visit gaps",
        # Scheduling hints (identity-neutral): keep every ring size's
        # lanes in one kernel so the limit-cycle pipeline's compaction
        # works across the whole batch, and compact eagerly — lanes of
        # one size resolve at very different times.
        chunk_lanes=256,
        compact_ratio=0.5,
    )


@register(
    "general_speedup",
    "Yanovski-style speed-up grid on general graphs (CSR-batched kernel)",
)
def _general_speedup(quick: bool) -> GeneralScenarioSpec:
    from repro.graphs import (
        gnp_random_graph,
        hypercube,
        lollipop,
        torus_2d,
    )

    if quick:
        graphs = (
            ("torus", torus_2d(6, 6)),
            ("hypercube", hypercube(5)),
            ("lollipop", lollipop(8, 8)),
            ("gnp", gnp_random_graph(48, 0.15, seed=11)),
        )
        ks, seeds = (1, 2, 4), (0,)
    else:
        graphs = (
            ("torus", torus_2d(16, 16)),
            ("hypercube", hypercube(8)),
            ("lollipop", lollipop(24, 40)),
            ("gnp", gnp_random_graph(192, 0.04, seed=11)),
        )
        ks, seeds = (1, 2, 4, 8, 16), (0, 1, 2)
    return GeneralScenarioSpec(
        name="general_speedup",
        graphs=graphs,
        ks=ks,
        seeds=seeds,
        description=(
            "cover-time speed-up S(k) = C(1)/C(k) across general graph "
            "families, every (family, k, seed) cell one lane of the "
            "batched CSR kernel"
        ),
    )


@register("cover_scaling", "cover-time grid across n, k and init families")
def _cover_scaling(quick: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="cover_scaling",
        ns=(64, 128) if quick else (128, 256, 512, 1024),
        ks=(2, 4) if quick else (2, 4, 8, 16),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
            InitFamily("equally_spaced", "uniform"),
            InitFamily("half_ring", "alternating"),
            InitFamily("random", "random"),
        ),
        metrics=("cover",),
        seeds=(0, 1, 2) if not quick else (0,),
        description="how cover time scales outside the Table 1 corners",
    )
