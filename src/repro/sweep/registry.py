"""Named sweep scenarios: the paper's experiments as declarative specs.

Each entry maps a name (used by ``python -m repro sweep <name>``) to a
builder producing a :class:`repro.sweep.spec.ScenarioSpec` at full or
``--quick`` size.  The registered scenarios re-express the repo's
experiment scripts on top of the sweep subsystem:

* ``table1`` — the rotor-router cover rows of Table 1 (worst placement
  all-on-one/toward-node-0, best placement equally-spaced under the
  negative adversary) swept over k;
* ``stabilization`` — the time-to-limit-cycle extension study:
  preperiod, period and in-cycle return gaps across initialization
  families including random ones;
* ``cover_scaling`` — a wide (n, k, family) cover-time grid the serial
  experiment scripts never attempt in one run.

New workloads register with :func:`register`; the CLI lists whatever
is here.
"""

from __future__ import annotations

from typing import Callable

from repro.sweep.spec import InitFamily, ScenarioSpec

ScenarioBuilder = Callable[[bool], ScenarioSpec]

_SCENARIOS: dict[str, tuple[ScenarioBuilder, str]] = {}


def register(
    name: str, description: str
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Register a scenario builder under ``name`` for the CLI."""

    def wrap(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = (builder, description)
        return builder

    return wrap


def scenario_names() -> list[str]:
    return list(_SCENARIOS)


def scenario_description(name: str) -> str:
    return _SCENARIOS[name][1]


def scenario(name: str, quick: bool = False) -> ScenarioSpec:
    """Build the named scenario at full (default) or quick size."""
    try:
        builder, _ = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep scenario {name!r}; known: {scenario_names()}"
        ) from None
    return builder(quick)


@register("table1", "Table 1 rotor-router cover times (worst + best placement)")
def _table1(quick: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="table1",
        ns=(128,) if quick else (512,),
        ks=(2, 4, 8) if quick else (2, 4, 8, 16, 32),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
        ),
        metrics=("cover",),
        description="deterministic cover-time columns of Table 1",
    )


@register("stabilization", "time-to-limit-cycle + return gaps across inits")
def _stabilization(quick: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="stabilization",
        ns=(32, 64) if quick else (64, 128, 256),
        ks=(4,),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
            InitFamily("equally_spaced", "positive"),
            InitFamily("random", "random"),
        ),
        metrics=("stabilization", "return"),
        seeds=(0, 1),
        description="preperiod/period (Brent) and in-cycle visit gaps",
    )


@register("cover_scaling", "cover-time grid across n, k and init families")
def _cover_scaling(quick: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="cover_scaling",
        ns=(64, 128) if quick else (128, 256, 512, 1024),
        ks=(2, 4) if quick else (2, 4, 8, 16),
        families=(
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
            InitFamily("equally_spaced", "uniform"),
            InitFamily("half_ring", "alternating"),
            InitFamily("random", "random"),
        ),
        metrics=("cover",),
        seeds=(0, 1, 2) if not quick else (0,),
        description="how cover time scales outside the Table 1 corners",
    )
