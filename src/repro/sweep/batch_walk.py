"""Vectorized batch random-walk kernel: many walk systems per numpy op.

The paper's headline claim is comparative — the rotor-router against
*parallel random walks* — so sweeps need the stochastic side of
Table 1 at the same batched scale as :mod:`repro.sweep.batch_ring`
gives the deterministic side.  A walk cell fans out over R seeded
repetitions; a chunk of cells therefore becomes ``R·B`` independent
lanes, each lane being one k-walker system on the n-ring.

The kernel advances all lanes block-wise, exactly like the reference
:class:`repro.randomwalk.ring_walk.RingRandomWalks`: per block every
lane draws a ``(block, k)`` increment matrix from its own generator,
the trajectories are recovered with one cumulative sum, and exact
first-visit rounds are extracted from the flattened position matrix.
The difference is the data layout: the per-lane trajectories are
concatenated along the walker axis into one ``(block, ΣkR)`` matrix,
so the cumulative sum, the modulo, and the first-visit ``np.unique``
scan run once per block instead of once per lane per block — the
per-block Python overhead is paid once for the whole batch.

**Seed-for-seed equivalence**: lane ``b`` with seed ``s`` consumes its
generator identically to ``RingRandomWalks(n, positions, seed=s)``
driven with the same ``block_size`` (the draws are per-lane and
block-aligned), so per-lane cover rounds are *exactly* those of the
reference — not merely equal in distribution.  The equivalence is
pinned by ``tests/test_sweep_batch_walk.py`` over randomized
configurations.  Lanes that cover stop drawing, mirroring the
reference's early exit, which keeps the streams aligned and the cost
proportional to uncovered lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs.telemetry import active as _telemetry
from repro.util.rng import make_rng

#: Default rounds per block; must match
#: :class:`repro.randomwalk.ring_walk.RingRandomWalks` for the
#: seed-for-seed equivalence documented above.
DEFAULT_BLOCK_SIZE = 1024


@dataclass(frozen=True)
class WalkLane:
    """One independent k-walker system: starting nodes plus its seed."""

    positions: tuple[int, ...]
    seed: int


class BatchRingWalks:
    """``L`` independent k-walk systems on n-rings, advanced together.

    Parameters
    ----------
    n:
        Ring size shared by every lane (>= 3).
    lanes:
        One :class:`WalkLane` per system; lanes may have different
        walker counts (the walker axis is ragged and concatenated).
    block_size:
        Rounds simulated per vectorized block.  Leave at the default
        to stay seed-for-seed equal to ``RingRandomWalks``.
    """

    def __init__(
        self,
        n: int,
        lanes: Sequence[WalkLane],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if n < 3:
            raise ValueError(f"ring requires n >= 3, got {n}")
        if not lanes:
            raise ValueError("at least one lane is required")
        if block_size < 1:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.n = n
        self.block_size = block_size
        self.num_lanes = len(lanes)
        self.round = 0
        self._blocks = 0
        self._lane_rounds = 0

        self._rngs = [make_rng(lane.seed) for lane in lanes]
        self._positions: list[np.ndarray] = []
        for b, lane in enumerate(lanes):
            positions = np.asarray(lane.positions, dtype=np.int64)
            if positions.size == 0:
                raise ValueError(f"lane {b}: at least one walker is required")
            if np.any((positions < 0) | (positions >= n)):
                raise ValueError(f"lane {b}: walker position out of range")
            self._positions.append(positions)

        #: Exact first-visit round per (lane, node); -1 = not yet visited.
        self.first_visit = np.full((self.num_lanes, n), -1, dtype=np.int64)
        for b, positions in enumerate(self._positions):
            self.first_visit[b, positions] = 0
        self.unvisited = np.count_nonzero(self.first_visit < 0, axis=1)
        #: Exact cover round per lane; -1 = not yet covered.
        self.cover_rounds = np.full(self.num_lanes, -1, dtype=np.int64)
        self.cover_rounds[self.unvisited == 0] = 0

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    #: Rounds per first-visit scan slice inside a block.  The block
    #: size is fixed by RNG-stream parity with the reference, but the
    #: *detection scan* is free to run in shorter slices: updating
    #: ``first_visit`` between slices lets the candidate filter discard
    #: revisits early, and lanes that cover mid-block drop out of the
    #: remaining slices entirely.
    _SCAN_SLICE = 64

    def _advance_block(self, active: np.ndarray, block: int) -> None:
        """Advance the ``active`` lanes ``block`` rounds in one batch.

        The per-lane increment draws are deliberately separate calls on
        separate generators (that is what makes each lane reproduce its
        standalone reference run); everything downstream — cumulative
        sum, modulo, first-visit extraction — runs on the concatenated
        ``(block, W)`` matrix.
        """
        increments = [
            self._rngs[b].choice(
                (-1, 1), size=(block, self._positions[b].size)
            ).astype(np.int64)
            for b in active
        ]
        widths = [inc.shape[1] for inc in increments]
        inc_cat = (
            np.concatenate(increments, axis=1)
            if len(increments) > 1
            else increments[0]
        )
        pos_cat = np.concatenate([self._positions[b] for b in active])
        trajectory = (
            pos_cat[None, :] + np.cumsum(inc_cat, axis=0)
        ) % self.n

        # Walker -> owning lane; (lane, node) flattens to the global
        # node id lane*n + node, an index into first_visit.ravel().
        walker_lane = np.repeat(np.asarray(active, dtype=np.int64), widths)
        flat_first = self.first_visit.ravel()
        scan_cols = np.flatnonzero(self.cover_rounds[walker_lane] < 0)
        for t0 in range(0, block, self._SCAN_SLICE):
            if not scan_cols.size:
                break  # every scanned lane has covered
            t1 = min(block, t0 + self._SCAN_SLICE)
            flat_sub = (
                walker_lane[scan_cols][None, :] * self.n
                + trajectory[t0:t1, scan_cols]
            ).ravel()
            # Restrict the first-occurrence sort to still-unvisited
            # nodes: the total sorted volume over a run is O(visits),
            # not O(rounds * walkers).  Candidates ascend in row-major
            # (= time) order, so np.unique's first index is the
            # earliest visit.
            candidates = np.flatnonzero(flat_first[flat_sub] < 0)
            if not candidates.size:
                continue
            visited, first_index = np.unique(
                flat_sub[candidates], return_index=True
            )
            rows = candidates[first_index] // scan_cols.size
            flat_first[visited] = self.round + t0 + rows + 1
            lanes_hit = visited // self.n
            self.unvisited -= np.bincount(
                lanes_hit, minlength=self.num_lanes
            )
            newly = np.unique(lanes_hit)
            covered = newly[
                (self.unvisited[newly] == 0) & (self.cover_rounds[newly] < 0)
            ]
            if covered.size:
                # Exact: the cover round is the latest first visit, no
                # matter where inside the slice it happened.
                self.cover_rounds[covered] = (
                    self.first_visit[covered].max(axis=1)
                )
                scan_cols = scan_cols[
                    self.cover_rounds[walker_lane[scan_cols]] < 0
                ]

        last = trajectory[-1]
        offset = 0
        for b, width in zip(active, widths):
            self._positions[b] = last[offset:offset + width].copy()
            offset += width
        self.round += block
        self._blocks += 1
        self._lane_rounds += block * len(active)

    def _uncovered(self) -> np.ndarray:
        return np.flatnonzero(self.cover_rounds < 0)

    def run(self, rounds: int) -> None:
        """Advance every lane ``rounds`` rounds (block-wise)."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        all_lanes = np.arange(self.num_lanes)
        remaining = rounds
        while remaining > 0:
            block = min(self.block_size, remaining)
            self._advance_block(all_lanes, block)
            remaining -= block

    def run_until_covered(
        self, max_rounds: int, strict: bool = True
    ) -> np.ndarray:
        """Advance until every lane covers; per-lane exact cover rounds.

        With ``strict``, lanes still uncovered after ``max_rounds``
        raise ``RuntimeError`` (mirroring the reference); otherwise
        they report -1, letting sweeps record truncation instead of
        dying mid-grid.  Covered lanes stop drawing from their
        generators, exactly like a standalone run that has returned.
        """
        active = self._uncovered()
        while active.size:
            if self.round >= max_rounds:
                if strict:
                    raise RuntimeError(
                        f"{active.size} of {self.num_lanes} lanes not "
                        f"covered within {max_rounds} rounds"
                    )
                break
            block = min(self.block_size, max_rounds - self.round)
            self._advance_block(active, block)
            active = self._uncovered()
        tel = _telemetry()
        if tel is not None:
            covered = int((self.cover_rounds >= 0).sum())
            tel.count_many({
                "walk.invocations": 1,
                "walk.lanes": self.num_lanes,
                "walk.walkers": sum(p.size for p in self._positions),
                "walk.rounds": self.round,
                "walk.blocks": self._blocks,
                "walk.lane_rounds": self._lane_rounds,
                "walk.lanes_covered": covered,
                "walk.lanes_truncated": self.num_lanes - covered,
            })
        return self.cover_rounds.copy()

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    def positions_lane(self, lane: int) -> list[int]:
        """Current walker positions of one lane (walker order preserved)."""
        return [int(v) for v in self._positions[lane]]

    def unvisited_lane(self, lane: int) -> int:
        return int(self.unvisited[lane])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchRingWalks(n={self.n}, lanes={self.num_lanes}, "
            f"round={self.round})"
        )


def walk_lanes_from_cells(
    cells: Sequence[tuple[Sequence[int], Sequence[int]]],
) -> tuple[list[WalkLane], list[tuple[int, int]]]:
    """Fan ``(agents, rep_seeds)`` cells out into repetition lanes.

    Returns the flat lane list plus per-cell ``(start, stop)`` slices
    into it, so callers can aggregate per-cell statistics from the
    kernel's flat per-lane results.
    """
    lanes: list[WalkLane] = []
    slices: list[tuple[int, int]] = []
    for agents, rep_seeds in cells:
        if not rep_seeds:
            raise ValueError("every cell needs at least one repetition seed")
        start = len(lanes)
        positions = tuple(int(a) for a in agents)
        lanes.extend(WalkLane(positions=positions, seed=int(s)) for s in rep_seeds)
        slices.append((start, len(lanes)))
    return lanes, slices
