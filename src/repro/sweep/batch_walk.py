"""Vectorized batch random-walk kernel: many walk systems per numpy op.

The paper's headline claim is comparative — the rotor-router against
*parallel random walks* — so sweeps need the stochastic side of
Table 1 at the same batched scale as :mod:`repro.sweep.batch_ring`
gives the deterministic side.  A walk cell fans out over R seeded
repetitions; a chunk of cells therefore becomes ``R·B`` independent
lanes, each lane being one k-walker system on the n-ring.

The kernel is seed-for-seed equivalent to the reference
:class:`repro.randomwalk.ring_walk.RingRandomWalks` but replaces its
flatten-and-``np.unique`` first-visit scan with an *interval-event*
sweep.  A ±1 walker's visited set on the ring is always the circular
projection of one contiguous unwrapped interval ``[lo, hi]``, and that
interval grows by at most one node per round, so the complete
first-visit history of a trajectory block is recovered from the
running ``maximum.accumulate`` / ``minimum.accumulate`` of the
unwrapped cumulative-sum trajectory: every row where the running
extreme advances past the walker's previous bound is one "new node"
event.  Events are *sparse* (O(nodes visited), not O(rounds·walkers)),
so the per-element work drops to a handful of cheap int8/int32 passes
— no per-element modulo, no gather into the visit table.

**Seed-for-seed equivalence**: lane ``b`` with seed ``s`` consumes its
generator identically to ``RingRandomWalks(n, positions, seed=s)``
driven with the same ``block_size``.  Two stream facts make the fused
draws exact, both pinned by ``tests/test_sweep_fused.py``:
``Generator.choice`` over a 2-element population consumes exactly one
64-bit word per element in C order, so (1) it equals
``2·integers(0, 2, dtype=int64) − 1`` element for element, and (2) any
partition of the same total element count into successive draws yields
the same increments.  Per-lane cover rounds are therefore *exactly*
those of the reference — not merely equal in distribution — which
``tests/test_sweep_batch_walk.py`` pins over randomized
configurations.  Lanes that cover stop drawing at the next epoch
boundary, mirroring the reference's early exit.

**Round fusion**: ``fuse_rounds`` lets one ``_advance_epoch`` dispatch
advance up to ``fuse_rounds * block_size`` rounds — the per-lane RNG
draw becomes one ``(T·block, k)`` matrix instead of ``T`` successive
``(block, k)`` matrices.  The trajectory is still *processed* in
``block_size`` sub-blocks (cache-resident working set, and covered
lanes drop out between sub-blocks so fusion adds no wasted compute,
only wasted tail draws that nothing ever observes).  The only
behavioral wrinkle is freezing: the unfused driver re-evaluates the
active set every ``block_size`` rounds, so a lane that covers inside
an epoch must report the positions it had at the end of the
``block_size``-aligned sub-block in which it covered — dropping its
columns between sub-blocks yields exactly that.  Fused-vs-unfused
bit-identity is pinned by ``tests/test_sweep_fused.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs.telemetry import active as _telemetry
from repro.util.rng import make_rng

#: Default rounds per block; must match
#: :class:`repro.randomwalk.ring_walk.RingRandomWalks` for the
#: seed-for-seed equivalence documented above.
DEFAULT_BLOCK_SIZE = 1024

#: Default blocks fused into one epoch (one RNG draw + one trajectory
#: recovery per lane per epoch).  Identity-neutral: any value yields
#: bit-identical covers, visit rounds and final positions.
DEFAULT_FUSE_ROUNDS = 4

#: Cap on ``rounds × walkers`` elements drawn per fused epoch — bounds
#: the per-epoch increment matrix (int8, ~4 MiB at the cap) and the
#: RNG tail wasted on lanes that cover mid-epoch.  Scheduling only:
#: the effective epoch shrinks, results never change.
_EPOCH_ELEMENT_BUDGET = 1 << 22


@dataclass(frozen=True)
class WalkLane:
    """One independent k-walker system: starting nodes plus its seed."""

    positions: tuple[int, ...]
    seed: int


class BatchRingWalks:
    """``L`` independent k-walk systems on n-rings, advanced together.

    Parameters
    ----------
    n:
        Ring size shared by every lane (>= 3).
    lanes:
        One :class:`WalkLane` per system; lanes may have different
        walker counts (the walker axis is ragged and concatenated).
    block_size:
        Rounds simulated per vectorized block.  Leave at the default
        to stay seed-for-seed equal to ``RingRandomWalks``.
    fuse_rounds:
        Blocks fused into one epoch (one dispatch advances up to
        ``fuse_rounds * block_size`` rounds).  Identity-neutral — see
        the module docstring for why any value is bit-identical.
    """

    def __init__(
        self,
        n: int,
        lanes: Sequence[WalkLane],
        block_size: int = DEFAULT_BLOCK_SIZE,
        fuse_rounds: int = DEFAULT_FUSE_ROUNDS,
    ) -> None:
        if n < 3:
            raise ValueError(f"ring requires n >= 3, got {n}")
        if not lanes:
            raise ValueError("at least one lane is required")
        if block_size < 1:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if fuse_rounds < 1:
            raise ValueError(
                f"fuse_rounds must be positive, got {fuse_rounds}"
            )
        self.n = n
        self.block_size = block_size
        self.fuse_rounds = fuse_rounds
        self.num_lanes = len(lanes)
        self.round = 0
        self._blocks = 0
        self._epochs = 0
        self._lane_rounds = 0

        self._rngs = [make_rng(lane.seed) for lane in lanes]
        self._positions: list[np.ndarray] = []
        for b, lane in enumerate(lanes):
            positions = np.asarray(lane.positions, dtype=np.int64)
            if positions.size == 0:
                raise ValueError(f"lane {b}: at least one walker is required")
            if np.any((positions < 0) | (positions >= n)):
                raise ValueError(f"lane {b}: walker position out of range")
            self._positions.append(positions)
        # Per-walker visited-interval bounds, stored as non-negative
        # offsets from the current position (hi = pos + hi_rel,
        # lo = pos - lo_rel on the unwrapped line).  Both are clamped
        # to n: once a walker's interval spans the ring, any wider
        # bound generates only events the visit-table filter discards.
        self._hi_rel = [np.zeros(p.size, dtype=np.int64) for p in self._positions]
        self._lo_rel = [np.zeros(p.size, dtype=np.int64) for p in self._positions]

        #: Exact first-visit round per (lane, node); -1 = not yet visited.
        self.first_visit = np.full((self.num_lanes, n), -1, dtype=np.int64)
        for b, positions in enumerate(self._positions):
            self.first_visit[b, positions] = 0
        self.unvisited = np.count_nonzero(self.first_visit < 0, axis=1)
        #: Exact cover round per lane; -1 = not yet covered.
        self.cover_rounds = np.full(self.num_lanes, -1, dtype=np.int64)
        self.cover_rounds[self.unvisited == 0] = 0

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def _advance_epoch(
        self, active: np.ndarray, total: int, drop_covered: bool = False
    ) -> None:
        """Advance the ``active`` lanes ``total`` rounds in one epoch.

        The per-lane increment draws are deliberately separate calls on
        separate generators (that is what makes each lane reproduce its
        standalone reference run); everything downstream runs on the
        concatenated ``(total, W)`` matrix, processed in ``block_size``
        sub-blocks.  With ``drop_covered`` a lane that covers drops out
        of the remaining sub-blocks, keeping the positions and interval
        bounds it held at the end of its covering sub-block — exactly
        the state the unfused driver would have frozen.
        """
        widths = [self._positions[b].size for b in active]
        num_walkers = int(sum(widths))
        # One fused draw per lane; integers(0, 2) is stream-identical
        # to the reference's choice((-1, 1)) (module docstring).  The
        # draw is (total, k) to preserve the stream's time-major order,
        # then transposed into the walker-major working layout so every
        # cumulative scan below runs along a contiguous axis.
        inc = np.empty((num_walkers, total), dtype=np.int8)
        offset = 0
        for b, width in zip(active, widths):
            inc[offset:offset + width] = self._rngs[b].integers(
                0, 2, size=(total, width), dtype=np.int64
            ).T
            offset += width
        inc *= 2
        inc -= 1

        # Sub-block trajectories live in a frame relative to each
        # walker's sub-block start, so int16 suffices for any ring the
        # interval bounds (<= n) fit in; absolute unwrapped positions
        # drift by at most `total` per epoch and stay int32.
        if self.n + self.block_size < 2**15:
            fdtype = np.int16
        elif self.n + self.block_size < 2**31:
            fdtype = np.int32
        else:  # pragma: no cover - astronomically large rings
            fdtype = np.int64
        cdtype = np.int32 if self.n + total < 2**31 - 1 else np.int64
        walker_lane = np.repeat(np.asarray(active, dtype=np.int64), widths)
        lane_off = walker_lane * self.n
        cur = np.concatenate([self._positions[b] for b in active]).astype(cdtype)
        hi_rel = np.concatenate([self._hi_rel[b] for b in active]).astype(fdtype)
        lo_rel = np.concatenate([self._lo_rel[b] for b in active]).astype(fdtype)

        flat_first = self.first_visit.ravel()
        base_round = self.round
        act = np.arange(num_walkers)
        for t0 in range(0, total, self.block_size):
            if not act.size:
                break  # every processed lane has covered
            t1 = min(total, t0 + self.block_size)
            sub = inc[act, t0:t1] if act.size < num_walkers else inc[:, t0:t1]
            span = t1 - t0
            hr = hi_rel[act]
            lr = lo_rel[act]
            neg_lr = -lr
            traj = np.cumsum(sub, axis=1, dtype=fdtype)
            rowmax = traj.max(axis=1)
            rowmin = traj.min(axis=1)
            # New-territory events: a ±1 walker's visited set is the
            # circular projection of its unwrapped interval, so first
            # visits happen exactly where a running extreme advances
            # past the walker's previous bound (by 1 per row, at most).
            # Each side scans only the rows whose extreme escaped.
            ev_parts: list[tuple[np.ndarray, np.ndarray]] = []
            for escape, bounds, accum, compare in (
                (rowmax > hr, hr, np.maximum, np.greater),
                (rowmin < neg_lr, neg_lr, np.minimum, np.less),
            ):
                rows = np.flatnonzero(escape)
                if not rows.size:
                    continue
                csub = traj[rows] if rows.size < act.size else traj
                bound = bounds[rows][:, None]
                cext = accum.accumulate(csub, axis=1)
                accum(cext, bound, out=cext)
                grow = np.empty(csub.shape, dtype=bool)
                compare(cext[:, :1], bound, out=grow[:, :1])
                compare(cext[:, 1:], cext[:, :-1], out=grow[:, 1:])
                ev = np.flatnonzero(grow.ravel())
                walkers = act[rows[ev // span]]
                vals = cext.ravel()[ev].astype(np.int64)
                vals += cur[walkers]
                gids = lane_off[walkers] + vals % self.n
                ev_parts.append((gids, base_round + t0 + ev % span + 1))
            if ev_parts:
                gids = np.concatenate([p[0] for p in ev_parts])
                rounds = np.concatenate([p[1] for p in ev_parts])
                # Drop already-visited nodes *before* sorting: surviving
                # events are O(first visits), not O(interval growth).
                keep = np.flatnonzero(flat_first[gids] < 0)
                if keep.size:
                    gids = gids[keep]
                    rounds = rounds[keep]
                    # Order by round so the first-occurrence sort below
                    # keeps the earliest visit per node.
                    order = np.argsort(rounds, kind="stable")
                    visited, first_index = np.unique(
                        gids[order], return_index=True
                    )
                    flat_first[visited] = rounds[order[first_index]]
                    lanes_hit = visited // self.n
                    self.unvisited -= np.bincount(
                        lanes_hit, minlength=self.num_lanes
                    )
                    newly = np.unique(lanes_hit)
                    covered = newly[
                        (self.unvisited[newly] == 0)
                        & (self.cover_rounds[newly] < 0)
                    ]
                    if covered.size:
                        # Exact: the cover round is the latest first
                        # visit, wherever in the sub-block it happened.
                        self.cover_rounds[covered] = (
                            self.first_visit[covered].max(axis=1)
                        )
            # Carry the frame to the next sub-block: shift the interval
            # bounds by the walker's net displacement and re-clamp.
            tlast = traj[:, -1]
            hi_rel[act] = np.minimum(np.maximum(hr, rowmax) - tlast, self.n)
            lo_rel[act] = np.minimum(np.maximum(lr, -rowmin) + tlast, self.n)
            cur[act] += tlast
            if drop_covered:
                act = act[self.cover_rounds[walker_lane[act]] < 0]

        # Write-back: wrapped positions plus the interval offsets.
        # Lanes dropped mid-epoch keep the values from the end of their
        # covering sub-block — the unfused freeze semantics.
        pos_mod = (cur % self.n).astype(np.int64)
        hi64 = hi_rel.astype(np.int64)
        lo64 = lo_rel.astype(np.int64)
        offset = 0
        for b, width in zip(active, widths):
            span = slice(offset, offset + width)
            self._positions[b] = pos_mod[span]
            self._hi_rel[b] = hi64[span]
            self._lo_rel[b] = lo64[span]
            offset += width
        self.round += total
        self._blocks += -(-total // self.block_size)
        self._epochs += 1
        self._lane_rounds += total * len(active)

    def _uncovered(self) -> np.ndarray:
        return np.flatnonzero(self.cover_rounds < 0)

    def _epoch_rounds(self, active: np.ndarray, remaining: int) -> int:
        """Rounds the next fused dispatch should advance.

        Up to ``fuse_rounds`` whole blocks, clamped so the epoch's
        ``rounds × walkers`` working set stays under
        :data:`_EPOCH_ELEMENT_BUDGET` — scheduling only, since any
        block partition is stream-identical (module docstring).
        """
        walkers = sum(self._positions[b].size for b in active)
        per_block = self.block_size * max(1, walkers)
        blocks = max(1, min(self.fuse_rounds, _EPOCH_ELEMENT_BUDGET // per_block))
        return min(blocks * self.block_size, remaining)

    def run(self, rounds: int) -> None:
        """Advance every lane ``rounds`` rounds (fused block-wise)."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        all_lanes = np.arange(self.num_lanes)
        remaining = rounds
        while remaining > 0:
            block = self._epoch_rounds(all_lanes, remaining)
            self._advance_epoch(all_lanes, block)
            remaining -= block

    def run_until_covered(
        self, max_rounds: int, strict: bool = True
    ) -> np.ndarray:
        """Advance until every lane covers; per-lane exact cover rounds.

        With ``strict``, lanes still uncovered after ``max_rounds``
        raise ``RuntimeError`` (mirroring the reference); otherwise
        they report -1, letting sweeps record truncation instead of
        dying mid-grid.  Covered lanes stop drawing from their
        generators, exactly like a standalone run that has returned.
        """
        active = self._uncovered()
        while active.size:
            if self.round >= max_rounds:
                if strict:
                    raise RuntimeError(
                        f"{active.size} of {self.num_lanes} lanes not "
                        f"covered within {max_rounds} rounds"
                    )
                break
            block = self._epoch_rounds(active, max_rounds - self.round)
            self._advance_epoch(active, block, drop_covered=True)
            active = self._uncovered()
        tel = _telemetry()
        if tel is not None:
            covered = int((self.cover_rounds >= 0).sum())
            tel.count_many({
                "walk.invocations": 1,
                "walk.lanes": self.num_lanes,
                "walk.walkers": sum(p.size for p in self._positions),
                "walk.rounds": self.round,
                "walk.blocks": self._blocks,
                "walk.epochs": self._epochs,
                "walk.lane_rounds": self._lane_rounds,
                "walk.lanes_covered": covered,
                "walk.lanes_truncated": self.num_lanes - covered,
            })
        return self.cover_rounds.copy()

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    def positions_lane(self, lane: int) -> list[int]:
        """Current walker positions of one lane (walker order preserved)."""
        return [int(v) for v in self._positions[lane]]

    def unvisited_lane(self, lane: int) -> int:
        return int(self.unvisited[lane])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchRingWalks(n={self.n}, lanes={self.num_lanes}, "
            f"round={self.round})"
        )


def walk_lanes_from_cells(
    cells: Sequence[tuple[Sequence[int], Sequence[int]]],
) -> tuple[list[WalkLane], list[tuple[int, int]]]:
    """Fan ``(agents, rep_seeds)`` cells out into repetition lanes.

    Returns the flat lane list plus per-cell ``(start, stop)`` slices
    into it, so callers can aggregate per-cell statistics from the
    kernel's flat per-lane results.
    """
    lanes: list[WalkLane] = []
    slices: list[tuple[int, int]] = []
    for agents, rep_seeds in cells:
        if not rep_seeds:
            raise ValueError("every cell needs at least one repetition seed")
        start = len(lanes)
        positions = tuple(int(a) for a in agents)
        lanes.extend(WalkLane(positions=positions, seed=int(s)) for s in rep_seeds)
        slices.append((start, len(lanes)))
    return lanes, slices
