"""Deterministic fault injection and execution policy for the executor.

The rotor-router itself is the paper's robustness story: a
deterministic process whose guarantees survive perturbation.  This
module gives the *execution layer* the same property by making its
failure modes reproducible.  A :class:`FaultPlan` is a seeded,
declarative description of the faults one sweep should suffer — crash
a worker on a given chunk, raise inside ``compute_chunk`` for cells
whose hash matches a prefix, delay a chunk past its deadline, corrupt
a store row as it is written — so the supervising dispatcher in
:mod:`repro.sweep.executor` can be exercised identically from tests,
benchmarks and the CI chaos job.

Activation is strictly explicit: a plan reaches the executor either as
the ``faults=`` argument of ``run_cells``/``run_sweep`` or through the
:data:`FAULTS_ENV` environment hook (JSON), and a chunk payload only
carries a fault stanza when a plan is active.  Nothing here ever joins
a cell identity, cache key or result — faults change *when and where*
computation fails, never what a successful computation produces — and
every injected failure is deterministic in ``(chunk, attempt, cell
hash)``, so a chaos run is as replayable as a clean one.

:class:`ExecutionPolicy` rides in the same module: the retry/timeout
knobs (``max_retries``, ``chunk_timeout``, ``retry_backoff``) that the
CLI threads through ``run``/``sweep``/``all``.  Explicit executor
arguments win; otherwise an ambient policy installed by
:func:`execution_policy` applies (this is how the CLI reaches the
experiment runners without widening eleven signatures); otherwise the
executor defaults.  Like the scheduling hints on ``ScenarioSpec``,
none of these knobs is part of any cache identity.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

#: Environment hook carrying a JSON :meth:`FaultPlan.to_dict` payload;
#: used by the CI chaos job to inject faults through the unmodified
#: CLI.  An unset/empty variable means no faults.
FAULTS_ENV = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """A failure raised (or simulated) by an active :class:`FaultPlan`."""


class InjectedCrash(InjectedFault):
    """In-process stand-in for a worker crash.

    A real worker crash (``os._exit``) only makes sense in a pool
    worker; when the faulted chunk runs in the dispatching process
    (``jobs <= 1`` or the serial degradation path) the crash is
    simulated as this exception so the supervisor's retry path is
    exercised instead of the test process dying.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of the faults to inject.

    Fields name *where* a fault fires; determinism comes from keying
    every fault on values that are themselves deterministic — the
    planner's chunk index, the supervisor's attempt counter, and cell
    config hashes:

    ``crash_chunks``
        Chunk indices whose **first** attempt kills its worker process
        with ``os._exit(1)`` (simulated as :class:`InjectedCrash` when
        the chunk runs in the dispatching process).  First-attempt-only
        keeps the fault one-shot: the redispatched attempt succeeds.
    ``poison_cells``
        ``config_hash`` prefixes of cells that raise
        :class:`InjectedFault` on **every** attempt of any chunk
        containing them — the permanent failure that drives the
        supervisor's bisection/quarantine path.  The raised message
        deliberately does not name the cell; isolation is the
        supervisor's job.
    ``delay_chunks``
        ``(chunk index, seconds)`` pairs: the chunk's first attempt
        sleeps before computing, which with ``chunk_timeout`` set
        exercises deadline preemption (the retry runs undelayed).
    ``flaky_chunks``
        ``(chunk index, failures)`` pairs: the chunk raises a transient
        :class:`InjectedFault` while ``attempt < failures``, then
        succeeds — the bounded-retry path without any poison cell.
    ``corrupt_rows``
        ``config_hash`` prefixes whose store rows are tampered with
        right after they are committed (see
        :func:`corrupt_rows_in_store`), exercising the store's
        corrupt-detection, quarantine and recompute path on the next
        run.

    ``seed`` labels the plan (and feeds the corruption bytes) so
    distinct chaos scenarios hash/log distinctly; the plan itself is
    already fully deterministic without it.
    """

    seed: int = 0
    crash_chunks: tuple[int, ...] = ()
    poison_cells: tuple[str, ...] = ()
    delay_chunks: tuple[tuple[int, float], ...] = ()
    flaky_chunks: tuple[tuple[int, int], ...] = ()
    corrupt_rows: tuple[str, ...] = ()

    @property
    def enabled(self) -> bool:
        """Whether the plan injects anything at all."""
        return bool(
            self.crash_chunks
            or self.poison_cells
            or self.delay_chunks
            or self.flaky_chunks
            or self.corrupt_rows
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "crash_chunks": list(self.crash_chunks),
            "poison_cells": list(self.poison_cells),
            "delay_chunks": [list(pair) for pair in self.delay_chunks],
            "flaky_chunks": [list(pair) for pair in self.flaky_chunks],
            "corrupt_rows": list(self.corrupt_rows),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            crash_chunks=tuple(
                int(c) for c in data.get("crash_chunks", ())
            ),
            poison_cells=tuple(data.get("poison_cells", ())),
            delay_chunks=tuple(
                (int(c), float(t)) for c, t in data.get("delay_chunks", ())
            ),
            flaky_chunks=tuple(
                (int(c), int(f)) for c, f in data.get("flaky_chunks", ())
            ),
            corrupt_rows=tuple(data.get("corrupt_rows", ())),
        )

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan named by :data:`FAULTS_ENV`, or None when unset.

        A malformed value fails loudly: silently running a chaos job
        without its faults would report vacuous success.
        """
        raw = os.environ.get(FAULTS_ENV, "").strip()
        if not raw:
            return None
        try:
            data = json.loads(raw)
        except ValueError as exc:
            raise ValueError(
                f"{FAULTS_ENV} does not hold valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ValueError(f"{FAULTS_ENV} must hold a JSON object")
        return cls.from_dict(data)

    def stanza(self, chunk: int | None, parent_pid: int) -> dict:
        """The per-payload fault stanza shipped to ``compute_chunk``.

        ``chunk`` is the planner's chunk index (None for bisection
        sub-chunks, which chunk-keyed faults never target — bisection
        must converge); ``attempt`` is bumped in place by the
        supervisor on every redispatch; ``parent_pid`` lets the worker
        side tell a real pool worker (crash = ``os._exit``) from the
        dispatching process (crash = :class:`InjectedCrash`).
        """
        return {
            "plan": self.to_dict(),
            "chunk": chunk,
            "attempt": 0,
            "parent_pid": parent_pid,
        }

    def corrupt_matches(self, hashes: Sequence[str]) -> list[str]:
        """The subset of ``hashes`` whose store rows should be tampered."""
        return [
            h for h in hashes
            if any(h.startswith(prefix) for prefix in self.corrupt_rows)
        ]


def apply_chunk_faults(
    stanza: dict, cell_hashes: Sequence[str]
) -> None:
    """Fire the faults a chunk payload's stanza declares, if any.

    Called at the top of ``compute_chunk`` — in a pool worker or in
    the dispatching process — before any simulation work.  Order is
    fixed (crash, delay, flaky, poison) so stacked faults on one chunk
    resolve deterministically.
    """
    plan = FaultPlan.from_dict(stanza["plan"])
    chunk = stanza.get("chunk")
    attempt = int(stanza.get("attempt", 0))
    if chunk is not None and attempt == 0 and chunk in plan.crash_chunks:
        if os.getpid() == stanza.get("parent_pid"):
            raise InjectedCrash(
                f"injected crash on chunk {chunk} (simulated in-process)"
            )
        os._exit(1)  # a real worker crash: no cleanup, no exception
    if chunk is not None and attempt == 0:
        for delay_chunk, seconds in plan.delay_chunks:
            if delay_chunk == chunk:
                time.sleep(seconds)
    if chunk is not None:
        for flaky_chunk, failures in plan.flaky_chunks:
            if flaky_chunk == chunk and attempt < failures:
                raise InjectedFault(
                    f"injected transient failure on chunk {chunk} "
                    f"(attempt {attempt} of {failures} injected failures)"
                )
    if plan.poison_cells and any(
        h.startswith(prefix)
        for prefix in plan.poison_cells
        for h in cell_hashes
    ):
        # Deliberately does not say WHICH cell: the supervisor has to
        # isolate it by bisection, like any real poison cell.
        raise InjectedFault("injected poison cell in chunk")


def corrupt_rows_in_store(store, hashes: Sequence[str]) -> int:
    """Tamper with committed rows, the way real corruption would.

    JSON backend: the entry file is truncated mid-payload (the
    half-written-file failure mode the tree historically suffered).
    SQLite backend: the row's metrics text is replaced with non-JSON
    bytes (external tampering; WAL rules out torn writes).  Either way
    the next probe reports ``corrupt`` and the executor quarantines
    and recomputes the cell.  Returns the number of rows tampered.
    """
    tampered = 0
    if store.backend == "json":
        for config_hash in hashes:
            path = store.path(config_hash)
            try:
                with open(path, "r+") as handle:
                    handle.truncate(max(1, os.path.getsize(path) // 2))
            except OSError:
                continue
            tampered += 1
    else:
        for config_hash in hashes:
            conn = store._conn(store.shard_of(config_hash))
            cursor = conn.execute(
                "UPDATE cells SET metrics = ? WHERE hash = ?",
                (f'{{"injected-corruption": {config_hash}', config_hash),
            )
            tampered += cursor.rowcount
    return tampered


# ----------------------------------------------------------------------
# execution policy: the retry/timeout knobs, explicitly or ambiently
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionPolicy:
    """Retry/timeout configuration for the supervising dispatcher.

    ``None`` fields defer to the executor defaults.  Scheduling-only:
    no field ever joins a cache identity (rule I001's lock is
    unchanged by any value here).
    """

    max_retries: int | None = None
    chunk_timeout: float | None = None
    retry_backoff: float | None = None


#: Ambient policy stack installed by :func:`execution_policy`; the
#: executor consults the innermost entry for knobs not passed
#: explicitly.
_POLICY_STACK: list[ExecutionPolicy] = []


def active_policy() -> ExecutionPolicy | None:
    """The innermost ambient policy, or None."""
    return _POLICY_STACK[-1] if _POLICY_STACK else None


@contextmanager
def execution_policy(policy: ExecutionPolicy) -> Iterator[ExecutionPolicy]:
    """Install ``policy`` ambiently for the dynamic extent of the block.

    This is how the CLI threads ``--max-retries``/``--chunk-timeout``
    through ``run``/``all`` without widening every experiment runner's
    signature: :func:`repro.sweep.executor.run_cells` resolves explicit
    arguments first, then the ambient policy, then its defaults.
    """
    _POLICY_STACK.append(policy)
    try:
        yield policy
    finally:
        _POLICY_STACK.pop()
