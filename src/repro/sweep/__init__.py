"""Sweep orchestration: declarative scenarios over batched ring kernels.

The subsystem turns one-off experiment scripts into declarative,
cached, parallel parameter sweeps:

- :mod:`repro.sweep.spec` — the grid language
  (:class:`ScenarioSpec` -> :class:`SweepConfig` cells with
  deterministic hashes) including the rotor/walk model axis;
- :mod:`repro.sweep.batch_ring` — the vectorized ``(B, n)`` kernel
  stepping many independent ring configurations per numpy op, with
  per-lane cover/stabilization/return detection;
- :mod:`repro.sweep.batch_walk` — the vectorized random-walk kernel:
  walk cells fan out over seeded repetitions into ``(R·B)`` lanes with
  exact per-lane cover detection, seed-for-seed equal to the reference
  :class:`repro.randomwalk.ring_walk.RingRandomWalks`;
- :mod:`repro.sweep.batch_general` — the CSR-batched rotor-router
  kernel for arbitrary port-labeled graphs: sparse occupancy stepping
  over stacked CSR arrays, heterogeneous graphs per invocation, exact
  per-lane cover detection and a scalar tail finisher;
- :mod:`repro.sweep.cells` — explicit measurement cells (materialized
  agents/pointers/seeds rather than named families) that give the
  paper-reproduction experiments the same cached, batched execution
  path via :mod:`repro.analysis.backend`;
- :mod:`repro.sweep.executor` — supervised multiprocessing execution
  with an on-disk result cache (``run_sweep`` for scenario grids,
  ``run_cells`` for explicit cell lists): per-chunk deadlines, bounded
  retry, poison-cell bisection/quarantine and serial degradation, all
  summarized in a :class:`FailureReport`;
- :mod:`repro.sweep.faults` — deterministic, seeded fault injection
  (:class:`FaultPlan`) plus the ambient retry/timeout
  :class:`ExecutionPolicy` the CLI installs;
- :mod:`repro.sweep.aggregate` — joins rotor and walk cells of one
  sweep into speed-up tables ``S(k) = C(n,1)/C(n,k)`` and
  rotor-vs-walk ratio tables;
- :mod:`repro.sweep.registry` — named scenarios behind
  ``python -m repro sweep <name>``.
"""

from repro.sweep.aggregate import (
    model_ratio_table,
    speedup_curves,
    speedup_table,
    summary_tables,
)
from repro.sweep.batch_ring import (
    DEFAULT_COMPACT_RATIO,
    BatchLimitCycles,
    BatchRingKernel,
    batch_limit_cycles,
    batch_return_gaps,
    lanes_from_configs,
)
from repro.sweep.batch_general import (
    BatchGeneralKernel,
    GeneralLane,
    batch_general_covers,
)
from repro.sweep.batch_walk import (
    BatchRingWalks,
    WalkLane,
    walk_lanes_from_cells,
)
from repro.sweep.cells import (
    GeneralRotorCell,
    LabeledGeneralRotorCell,
    RotorCell,
    WalkCoverCell,
    WalkGapsCell,
    cell_from_dict,
)
from repro.sweep.executor import (
    ConfigResult,
    FailureReport,
    ResultCache,
    SweepResult,
    run_cells,
    run_sweep,
)
from repro.sweep.faults import (
    ExecutionPolicy,
    FaultPlan,
    execution_policy,
)
from repro.sweep.store import VerifyReport, verify_store
from repro.sweep.registry import scenario, scenario_names
from repro.sweep.spec import (
    GeneralScenarioSpec,
    InitFamily,
    ScenarioSpec,
    SweepConfig,
    general_instance,
)

__all__ = [
    "DEFAULT_COMPACT_RATIO",
    "BatchGeneralKernel",
    "BatchLimitCycles",
    "BatchRingKernel",
    "BatchRingWalks",
    "GeneralLane",
    "WalkLane",
    "batch_general_covers",
    "batch_limit_cycles",
    "batch_return_gaps",
    "lanes_from_configs",
    "walk_lanes_from_cells",
    "ConfigResult",
    "ExecutionPolicy",
    "FailureReport",
    "FaultPlan",
    "GeneralRotorCell",
    "LabeledGeneralRotorCell",
    "ResultCache",
    "RotorCell",
    "SweepResult",
    "VerifyReport",
    "WalkCoverCell",
    "WalkGapsCell",
    "cell_from_dict",
    "execution_policy",
    "run_cells",
    "run_sweep",
    "verify_store",
    "model_ratio_table",
    "speedup_curves",
    "speedup_table",
    "summary_tables",
    "scenario",
    "scenario_names",
    "GeneralScenarioSpec",
    "InitFamily",
    "ScenarioSpec",
    "SweepConfig",
    "general_instance",
]
