"""Sweep orchestration: declarative scenarios over batched ring kernels.

The subsystem turns one-off experiment scripts into declarative,
cached, parallel parameter sweeps:

- :mod:`repro.sweep.spec` — the grid language
  (:class:`ScenarioSpec` -> :class:`SweepConfig` cells with
  deterministic hashes);
- :mod:`repro.sweep.batch_ring` — the vectorized ``(B, n)`` kernel
  stepping many independent ring configurations per numpy op, with
  per-lane cover/stabilization/return detection;
- :mod:`repro.sweep.executor` — multiprocessing execution with an
  on-disk JSON result cache;
- :mod:`repro.sweep.registry` — named scenarios behind
  ``python -m repro sweep <name>``.
"""

from repro.sweep.batch_ring import (
    BatchLimitCycles,
    BatchRingKernel,
    batch_limit_cycles,
    batch_return_gaps,
    lanes_from_configs,
)
from repro.sweep.executor import (
    ConfigResult,
    ResultCache,
    SweepResult,
    run_sweep,
)
from repro.sweep.registry import scenario, scenario_names
from repro.sweep.spec import InitFamily, ScenarioSpec, SweepConfig

__all__ = [
    "BatchLimitCycles",
    "BatchRingKernel",
    "batch_limit_cycles",
    "batch_return_gaps",
    "lanes_from_configs",
    "ConfigResult",
    "ResultCache",
    "SweepResult",
    "run_sweep",
    "scenario",
    "scenario_names",
    "InitFamily",
    "ScenarioSpec",
    "SweepConfig",
]
