"""CSR-batched rotor-router kernel for arbitrary port-labeled graphs.

The ring kernels exploit degree-2 structure for branch-free arithmetic;
general graphs have none, so this kernel vectorizes along a different
axis: **occupancy is sparse**.  A round moves agents out of the
occupied ``(lane, node)`` pairs only, and the number of occupied pairs
is bounded by the agent count — never by ``B·n`` — so the per-round
cost is a fixed sequence of numpy operations over arrays of size
``O(occupied pairs + arcs used)``, independent of how large the graphs
are.

**Layout.**  Every lane (one ``(graph, pointers, agents)`` instance)
owns a contiguous *slab* of one flat state vector: state index
``slab_base[lane] + v`` holds node ``v``'s pointer and visited flag.
Graphs are packed once into stacked CSR arrays
(:class:`repro.graphs.base.GraphCSR`: ``indptr``/flat ``neighbors``/
``deg``), and per-state gather tables (``deg``, ``indptr`` row, slab
base, owning lane) are precomputed at construction, so lanes over
*different* graphs coexist in one kernel — all seeds × k-values of
every family in a chunk share each round's numpy dispatches.

**Round.**  For each occupied pair with ``c`` agents at a node of
degree ``d`` and pointer ``p``, the paper's round-robin rule sends the
agents through ports ``p, p+1, ..., p+min(c,d)-1 (mod d)``, port ``j``
carrying ``c // d + (j < c mod d)`` agents, and leaves the pointer at
``(p + c) mod d``.  The fan-out is built with repeat/cumcount
indexing (one segment per pair), arc targets come from one gather of
the stacked CSR, and arrivals merge with ``np.unique`` + ``bincount``
— the merged unique targets are exactly the next round's occupied
pairs, so no dense scan ever happens.  Rounds where every pair holds a
single agent (the common steady state once agents spread) skip the
fan-out machinery entirely.

**Tail.**  Cover detection is exact per round (fresh arrivals decrement
a per-lane unvisited counter; initial occupancy counts at round 0), and
resolved lanes drop out of the occupied set immediately.  When the
surviving work is too small to amortize numpy dispatch — a few
straggler lanes with a handful of agents — the driver hands each
remaining lane to a scalar pure-Python finisher over the same CSR
(plain-list indexing, ~0.2–2 µs/round vs ~10 µs of per-round numpy
overhead), which is what keeps long single-agent lanes from running at
dispatch cost.  Both phases implement the identical update rule;
``tests/test_sweep_batch_general.py`` pins the kernel configuration-
for-configuration against :class:`repro.core.engine.MultiAgentRotorRouter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.base import GraphCSR
from repro.obs.telemetry import active as _telemetry

#: Scalar-finisher crossover: once the occupied-pair count (a proxy for
#: both lane count and per-round numpy work) drops to this, remaining
#: lanes finish on the pure-Python scalar stepper.  Measured on the
#: speedup_graphs grid: vector rounds cost ~10 µs of dispatch plus
#: ~0.05 µs/pair, scalar rounds ~0.2–0.5 µs/pair with no floor, and a
#: threshold sweep (16..192) bottoms out around 64 pairs.  Scheduling
#: only — both phases are exact.
DEFAULT_SCALAR_TAIL_PAIRS = 64


@dataclass(frozen=True)
class GeneralLane:
    """One rotor-router instance scheduled into the batched kernel.

    ``pointers`` and ``agents`` accept any integer array-likes; the
    kernel reads them through ``np.asarray``.
    """

    csr: GraphCSR
    pointers: np.ndarray
    agents: np.ndarray
    max_rounds: int


def _as_lane(csr, pointers, agents, max_rounds) -> GeneralLane:
    """Validate one lane tuple (vectorized — this runs per chunk)."""
    n = csr.num_nodes
    ptr = np.asarray(pointers, dtype=np.int64)
    if ptr.shape != (n,):
        raise ValueError(
            f"lane has {ptr.size} pointers for a {n}-node graph"
        )
    agent_nodes = np.asarray(agents, dtype=np.int64)
    if agent_nodes.size == 0:
        raise ValueError("every lane requires at least one agent")
    bad = (ptr < 0) | (ptr >= csr.deg)
    if bad.any():
        v = int(np.flatnonzero(bad)[0])
        raise ValueError(
            f"pointer {int(ptr[v])} at node {v} out of range for degree "
            f"{int(csr.deg[v])}"
        )
    if ((agent_nodes < 0) | (agent_nodes >= n)).any():
        raise ValueError(f"agent position out of range for {n} nodes")
    max_rounds = int(max_rounds)
    if max_rounds < 0:
        raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
    return GeneralLane(
        csr=csr, pointers=ptr, agents=agent_nodes, max_rounds=max_rounds
    )


class BatchGeneralKernel:
    """``B`` independent rotor-router lanes over shared CSR graphs.

    Parameters
    ----------
    lanes:
        ``(csr, pointers, agents, max_rounds)`` tuples (or
        :class:`GeneralLane`).  Lanes may reference *different* graphs;
        identical :class:`GraphCSR` objects (or equal digests) share
        one stacked copy.  ``max_rounds`` is per lane: a lane that has
        not covered when its budget elapses freezes with cover ``-1``.
    scalar_tail_pairs:
        Occupied-pair threshold below which remaining lanes finish on
        the scalar stepper (scheduling only, never results).
    """

    def __init__(
        self,
        lanes: Sequence,
        scalar_tail_pairs: int = DEFAULT_SCALAR_TAIL_PAIRS,
    ) -> None:
        if not lanes:
            raise ValueError("at least one lane is required")
        if scalar_tail_pairs < 0:
            raise ValueError(
                f"scalar_tail_pairs must be non-negative, got "
                f"{scalar_tail_pairs}"
            )
        self._scalar_tail_pairs = int(scalar_tail_pairs)
        built = [
            lane if isinstance(lane, GeneralLane) else _as_lane(*lane)
            for lane in lanes
        ]
        self.num_lanes = len(built)
        self._lanes = built

        # Stack each distinct graph's CSR once (keyed by digest).
        graphs: list[GraphCSR] = []
        graph_of: dict[str, int] = {}
        lane_graph = np.empty(self.num_lanes, dtype=np.int64)
        for i, lane in enumerate(built):
            gid = graph_of.get(lane.csr.digest)
            if gid is None:
                gid = len(graphs)
                graph_of[lane.csr.digest] = gid
                graphs.append(lane.csr)
            lane_graph[i] = gid
        arc_base = np.zeros(len(graphs) + 1, dtype=np.int64)
        np.cumsum([g.num_arcs for g in graphs], out=arc_base[1:])
        self._nbr = (
            np.concatenate([g.neighbors for g in graphs])
            if arc_base[-1]
            else np.zeros(0, dtype=np.int64)
        )

        # Per-lane slabs of the flat state vector.
        sizes = np.array([lane.csr.num_nodes for lane in built], np.int64)
        slab_base = np.zeros(self.num_lanes + 1, dtype=np.int64)
        np.cumsum(sizes, out=slab_base[1:])
        self._slab_base = slab_base
        states = int(slab_base[-1])

        # Per-state gather tables: degree, CSR row start, owning slab
        # base and owning lane — one gather each per round instead of
        # lane-by-lane address arithmetic.
        self._ptr = np.empty(states, dtype=np.int64)
        self._deg_s = np.empty(states, dtype=np.int64)
        self._row_s = np.empty(states, dtype=np.int64)
        self._base_s = np.empty(states, dtype=np.int64)
        self._lane_s = np.empty(states, dtype=np.int64)
        self._visited = np.zeros(states, dtype=bool)

        self.cover_rounds = np.full(self.num_lanes, -1, dtype=np.int64)
        self._unvisited = np.zeros(self.num_lanes, dtype=np.int64)
        self._budgets = np.array(
            [lane.max_rounds for lane in built], dtype=np.int64
        )
        self._active = np.ones(self.num_lanes, dtype=bool)
        #: Frozen lanes' occupancy, stashed at resolution for `counts`.
        self._frozen: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        occ_parts: list[np.ndarray] = []
        cnt_parts: list[np.ndarray] = []
        max_pairs = 0
        for i, lane in enumerate(built):
            n = lane.csr.num_nodes
            base = int(slab_base[i])
            csr = lane.csr
            self._deg_s[base:base + n] = csr.deg
            self._row_s[base:base + n] = (
                csr.indptr[:-1] + arc_base[lane_graph[i]]
            )
            self._base_s[base:base + n] = base
            self._lane_s[base:base + n] = i
            self._ptr[base:base + n] = np.asarray(lane.pointers, np.int64)
            counts = np.bincount(
                np.asarray(lane.agents, np.int64), minlength=n
            ).astype(np.int64)
            occ = np.flatnonzero(counts)
            occ_parts.append(occ + base)
            cnt_parts.append(counts[occ])
            max_pairs += int(
                min(len(lane.agents), n)
            )  # pairs in a lane never exceed min(k, n)
            self._visited[base:base + n] = counts > 0
            self._unvisited[i] = n - occ.size
            if self._unvisited[i] == 0:
                self.cover_rounds[i] = 0
                self._active[i] = False
        self._occ = np.concatenate(occ_parts)
        self._cnt = np.concatenate(cnt_parts)
        # Reusable 0..max_pairs iota: fan-out indices are slices of it.
        self._iota = np.arange(
            max(max_pairs, int(self._cnt.sum())) + 1, dtype=np.int64
        )
        self.round = 0
        self._vector_rounds = 0
        self._pair_rounds = 0
        self._scalar_lanes = 0
        self._scalar_rounds = 0
        if not self._active.all():
            self._drop_resolved()

    # ------------------------------------------------------------------
    # vectorized stepping
    # ------------------------------------------------------------------
    def _drop_resolved(self) -> None:
        """Stash and remove pairs whose lane froze (covered/out of budget)."""
        lanes = self._lane_s[self._occ]
        keep = self._active[lanes]
        if keep.all():
            return
        for lane in np.unique(lanes[~keep]):
            member = lanes == lane
            self._frozen[int(lane)] = (
                self._occ[member].copy(), self._cnt[member].copy()
            )
        self._occ = self._occ[keep]
        self._cnt = self._cnt[keep]

    def _step_vector(self) -> None:
        """One exact synchronous round over every occupied pair."""
        s = self._occ
        c = self._cnt
        self._vector_rounds += 1
        self._pair_rounds += s.size
        deg = self._deg_s[s]
        p = self._ptr[s]
        if c.max() == 1:
            # Steady-state fast path: every pair releases one agent
            # through port p; pointer advances by one.
            target = self._nbr[self._row_s[s] + p]
            p1 = p + 1
            np.subtract(p1, deg, out=p1, where=p1 >= deg)
            self._ptr[s] = p1
            dest = self._base_s[s] + target
            uniq, counts = np.unique(dest, return_counts=True)
            merged = counts
        else:
            base, extra = np.divmod(c, deg)
            wrap = p + extra
            np.subtract(wrap, deg, out=wrap, where=wrap >= deg)
            self._ptr[s] = wrap  # (p + c) mod d == (p + c mod d) mod d
            used = np.minimum(c, deg)
            starts = np.cumsum(used)
            total = int(starts[-1])
            pair = np.repeat(self._iota[:used.size], used)
            j = self._iota[:total] - (starts - used)[pair]
            port = p[pair] + j
            deg_pair = deg[pair]
            np.subtract(port, deg_pair, out=port, where=port >= deg_pair)
            target = self._nbr[self._row_s[s][pair] + port]
            moved = base[pair] + (j < extra[pair])
            dest = self._base_s[s][pair] + target
            uniq, inverse = np.unique(dest, return_inverse=True)
            # Weighted bincount is float64; exact for counts < 2^53.
            merged = np.bincount(inverse, weights=moved).astype(np.int64)
        self.round += 1
        self._occ = uniq
        self._cnt = merged
        seen = self._visited[uniq]
        if not seen.all():
            fresh = uniq[~seen]
            self._visited[fresh] = True
            self._unvisited -= np.bincount(
                self._lane_s[fresh], minlength=self.num_lanes
            )
            covered = (self._unvisited == 0) & self._active
            if covered.any():
                self.cover_rounds[covered] = self.round
                self._active &= ~covered
                self._drop_resolved()

    # ------------------------------------------------------------------
    # scalar tail
    # ------------------------------------------------------------------
    def _finish_lane_scalar(self, lane: int) -> None:
        """Run one lane to cover/budget with plain-Python stepping.

        Exactly the vector rule on list-indexed CSR; numpy scalar
        indexing inside a tight loop would cost ~10x plain lists.
        """
        base = int(self._slab_base[lane])
        n = int(self._slab_base[lane + 1]) - base
        csr = self._lanes[lane].csr
        deg = csr.deg.tolist()
        row = csr.indptr.tolist()
        nbr = csr.neighbors.tolist()
        ptr = self._ptr[base:base + n].tolist()
        visited = self._visited[base:base + n]
        vis = bytearray(visited.tobytes())
        unvisited = int(self._unvisited[lane])
        budget = int(self._budgets[lane])
        member = self._lane_s[self._occ] == lane
        occupied = dict(
            zip(
                (self._occ[member] - base).tolist(),
                self._cnt[member].tolist(),
            )
        )
        rounds = self.round
        self._scalar_lanes += 1
        cover = -1
        if len(occupied) == 1 and unvisited:
            # Single-agent ultratail: the dominant case (k = 1 lanes
            # outlive everything else) gets a dict-free loop.
            (v, c), = occupied.items()
            if c == 1:
                while rounds < budget:
                    rounds += 1
                    p = ptr[v]
                    d = deg[v]
                    ptr[v] = p + 1 if p + 1 < d else 0
                    v = nbr[row[v] + p]
                    if not vis[v]:
                        vis[v] = 1
                        unvisited -= 1
                        if unvisited == 0:
                            cover = rounds
                            break
                occupied = {v: 1}
        if unvisited and cover < 0:
            while rounds < budget:
                rounds += 1
                arrivals: dict[int, int] = {}
                for v, c in occupied.items():
                    d = deg[v]
                    p = ptr[v]
                    start = row[v]
                    if c < d:
                        whole, part, used = 0, c, c
                    else:
                        whole, part = divmod(c, d)
                        used = d
                    for j in range(used):
                        pj = p + j
                        if pj >= d:
                            pj -= d
                        u = nbr[start + pj]
                        carried = whole + 1 if j < part else whole
                        if u in arrivals:
                            arrivals[u] += carried
                        else:
                            arrivals[u] = carried
                    pj = p + part
                    ptr[v] = pj - d if pj >= d else pj
                occupied = arrivals
                newly = 0
                for u in arrivals:
                    if not vis[u]:
                        vis[u] = 1
                        newly += 1
                if newly:
                    unvisited -= newly
                    if unvisited == 0:
                        cover = rounds
                        break
        # Write the lane's final state back into the shared arrays.
        self._ptr[base:base + n] = ptr
        self._visited[base:base + n] = np.frombuffer(
            bytes(vis), dtype=bool
        )
        self._unvisited[lane] = unvisited
        nodes = np.fromiter(occupied, dtype=np.int64, count=len(occupied))
        order = np.argsort(nodes)
        nodes = nodes[order] + base
        values = np.fromiter(
            occupied.values(), dtype=np.int64, count=len(occupied)
        )[order]
        self._frozen[lane] = (nodes, values)
        self._scalar_rounds += rounds - self.round
        self.cover_rounds[lane] = cover if unvisited == 0 else -1
        self._active[lane] = False

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run_until_covered(
        self, strict: bool = True
    ) -> np.ndarray:
        """Run every lane to its cover round (or its budget).

        Returns per-lane cover rounds; a truncated lane reports ``-1``
        (``strict=True`` raises instead, mirroring the serial engine's
        loud budget failure).  Lanes freeze at resolution: their final
        ``(pointers, counts)`` are exactly the serial engine's state at
        the returned round.
        """
        # Budget freezing runs at *deadlines*, not per round: the
        # earliest active budget is the first round any lane can
        # exhaust, so rounds below it skip the (B,) exhaustion mask
        # entirely.  Lanes covering mid-flight only shrink the active
        # set, so a stale deadline is at most early — never late — and
        # the freeze round stays exact.
        deadline = (
            int(self._budgets[self._active].min())
            if self._active.any()
            else 0
        )
        while self._occ.size:
            if self._occ.size <= self._scalar_tail_pairs:
                for lane in np.unique(self._lane_s[self._occ]).tolist():
                    self._finish_lane_scalar(int(lane))
                self._occ = self._occ[:0]
                self._cnt = self._cnt[:0]
                break
            if self.round >= deadline:
                exhausted = self._active & (self._budgets <= self.round)
                if exhausted.any():
                    self._active &= ~exhausted
                    self._drop_resolved()
                    if not self._occ.size:
                        break
                deadline = (
                    int(self._budgets[self._active].min())
                    if self._active.any()
                    else self.round + 1
                )
            self._step_vector()
        if strict and (self.cover_rounds < 0).any():
            truncated = int(np.count_nonzero(self.cover_rounds < 0))
            raise RuntimeError(
                f"{truncated} lanes not covered within their budgets"
            )
        tel = _telemetry()
        if tel is not None:
            covered = int((self.cover_rounds >= 0).sum())
            tel.count_many({
                "general.invocations": 1,
                "general.lanes": self.num_lanes,
                "general.vector_rounds": self._vector_rounds,
                "general.pair_rounds": self._pair_rounds,
                "general.scalar_lanes": self._scalar_lanes,
                "general.scalar_rounds": self._scalar_rounds,
                "general.lanes_covered": covered,
                "general.lanes_truncated": self.num_lanes - covered,
            })
        return self.cover_rounds.copy()

    # ------------------------------------------------------------------
    # state inspection (equivalence tests, debugging)
    # ------------------------------------------------------------------
    def lane_state(self, lane: int) -> tuple[np.ndarray, np.ndarray]:
        """``(pointers, counts)`` of one lane's current configuration."""
        if not 0 <= lane < self.num_lanes:
            raise IndexError(f"lane {lane} out of range")
        base = int(self._slab_base[lane])
        n = int(self._slab_base[lane + 1]) - base
        pointers = self._ptr[base:base + n].copy()
        counts = np.zeros(n, dtype=np.int64)
        if lane in self._frozen:
            occ, cnt = self._frozen[lane]
            counts[occ - base] = cnt
        else:
            member = self._lane_s[self._occ] == lane
            counts[self._occ[member] - base] = self._cnt[member]
        return pointers, counts


def batch_general_covers(
    lanes: Sequence,
    strict: bool = False,
    scalar_tail_pairs: int = DEFAULT_SCALAR_TAIL_PAIRS,
) -> np.ndarray:
    """Cover rounds of many general-graph rotor lanes, batched.

    ``lanes`` holds ``(csr, pointers, agents, max_rounds)`` tuples; the
    result is one cover round per lane in order (-1 for lanes that
    exhausted their budget when ``strict`` is off).
    """
    kernel = BatchGeneralKernel(lanes, scalar_tail_pairs=scalar_tail_pairs)
    return kernel.run_until_covered(strict=strict)
