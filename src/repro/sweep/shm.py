"""Zero-copy shared-memory handoff of chunk arrays to worker processes.

Parallel sweeps (``jobs > 1``) used to pickle every chunk's large
arrays — rotor lane slabs, general-graph CSR tables — through the
multiprocessing pipe, once per chunk.  This module moves those arrays
into **one** :mod:`multiprocessing.shared_memory` segment owned by the
dispatching ``run_cells`` call; payloads then carry only small
``(segment, offset, shape, dtype)`` descriptor dicts and workers map
the same physical pages read-only.

Ownership and lifecycle
-----------------------

* The **parent** packs arrays into a :class:`SlabArena`, seals it (one
  segment allocation + one copy per array) before the pool starts, and
  unlinks the segment in a ``finally`` as soon as the pool has drained
  — including when a worker crashed mid-chunk.  Unlinking only removes
  the name; live worker mappings stay valid until those processes
  exit, so there is no shutdown race, and a crashed worker leaks
  nothing (its mapping dies with it).
* **Workers** attach segments lazily by name and cache the attachment
  for the life of the process (:func:`resolve`).  Attachment bypasses
  :mod:`multiprocessing.resource_tracker` registration (see
  :func:`_attach`): attaching is not ownership, and under ``fork``
  every worker shares the parent's tracker, so worker-side
  registrations would race the parent's own bookkeeping.
* Resolved views are **read-only** (``writeable=False``): chunks of
  one sweep may share arrays (general chunks share their graph table),
  and a kernel that needs mutable state copies — exactly what the
  kernel constructors do with any input.

Segment names embed the owning pid plus a per-process sequence number.
That is deliberate and identity-safe: names are scheduling plumbing
that never reaches a config hash, cache path or result — the lint
suite's D003 rule (pid/wall-clock in identity-producing functions)
does not apply here, and ``tests/test_sweep_fused.py`` pins that this
module stays out of the cache-identity surface.
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.graphs.base import GraphCSR

#: Marker key of slab descriptor dicts (chosen to never collide with
#: payload field names).
SLAB_KEY = "__slab__"

#: Byte alignment of packed arrays inside a segment; 16 covers every
#: dtype numpy ships, including complex128.
_ALIGN = 16

#: Per-process counter feeding unique segment names.
_SEQUENCE = 0


def _segment_name() -> str:
    """A process-unique shared-memory segment name.

    Embeds the pid so concurrent sweeps on one host never collide, and
    a sequence number so nested/consecutive ``run_cells`` calls within
    one process get distinct segments.  Kept short: POSIX shm names are
    limited (31 bytes on macOS).
    """
    global _SEQUENCE
    _SEQUENCE += 1
    return f"repro-{os.getpid()}-{_SEQUENCE}"


class SlabArena:
    """Packs arrays into one shared-memory segment, two-phase.

    ``add`` stages arrays and returns their descriptor dicts with the
    segment name still unset; ``seal`` allocates the segment, copies
    every staged array in, and fills the names in place — descriptors
    already embedded in payloads pick the name up for free.  ``close``
    (parent only) unlinks the segment.
    """

    def __init__(self) -> None:
        self._parts: list[tuple[np.ndarray, dict]] = []
        self._size = 0
        self._segment: shared_memory.SharedMemory | None = None

    def __len__(self) -> int:
        return len(self._parts)

    @property
    def nbytes(self) -> int:
        """Total payload bytes staged (alignment padding included)."""
        return self._size

    def add(self, array: np.ndarray) -> dict:
        """Stage one array; returns its (mutable) descriptor dict."""
        if self._segment is not None:
            raise RuntimeError("arena is sealed")
        array = np.ascontiguousarray(array)
        offset = -(-self._size // _ALIGN) * _ALIGN
        descriptor = {
            SLAB_KEY: True,
            "segment": None,
            "offset": offset,
            "shape": list(array.shape),
            "dtype": array.dtype.str,
        }
        self._parts.append((array, descriptor))
        self._size = offset + array.nbytes
        return descriptor

    def seal(self) -> None:
        """Allocate the segment and copy every staged array into it."""
        if self._segment is not None:
            raise RuntimeError("arena is already sealed")
        name = _segment_name()
        segment = shared_memory.SharedMemory(
            create=True, name=name, size=max(1, self._size)
        )
        for array, descriptor in self._parts:
            descriptor["segment"] = name
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=segment.buf,
                offset=descriptor["offset"],
            )
            view[...] = array
        self._parts.clear()
        self._segment = segment

    def close(self) -> None:
        """Unlink the segment (parent-side cleanup; idempotent)."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


#: Worker-side attachment cache: one mapping per segment per process,
#: kept for the process lifetime (views into it escape to kernels).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def is_descriptor(obj: object) -> bool:
    """Whether ``obj`` is a slab descriptor produced by :class:`SlabArena`."""
    return isinstance(obj, dict) and obj.get(SLAB_KEY) is True


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment WITHOUT resource-tracker registration.

    CPython < 3.13 registers a segment with the resource tracker on
    attach, not just on create.  Attachment is not ownership: under the
    ``fork`` start method every worker shares the parent's tracker, so
    a worker's registration/unregistration races the parent's and the
    other workers' (double-unregister raises ``KeyError`` inside the
    tracker process).  3.13+ exposes ``track=False`` for exactly this;
    earlier versions get the equivalent via a scoped register no-op.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def resolve(descriptor: dict) -> np.ndarray:
    """A read-only array view of one descriptor's shared slab."""
    name = descriptor["segment"]
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = _attach(name)
        _ATTACHED[name] = segment
    view: np.ndarray = np.ndarray(
        tuple(descriptor["shape"]),
        dtype=np.dtype(descriptor["dtype"]),
        buffer=segment.buf,
        offset=descriptor["offset"],
    )
    view.flags.writeable = False
    return view


def pack_csr(arena: SlabArena, csr: GraphCSR) -> dict:
    """Stage one :class:`GraphCSR`'s arrays; returns its descriptor triple."""
    return {
        "indptr": arena.add(csr.indptr),
        "neighbors": arena.add(csr.neighbors),
        "deg": arena.add(csr.deg),
    }


def resolve_csr(entry: dict) -> GraphCSR:
    """Rebuild a :class:`GraphCSR` from a :func:`pack_csr` triple.

    The views are read-only, so ``GraphCSR.__post_init__`` keeps them
    as-is — the graph's arrays are the shared pages, zero-copy.
    """
    return GraphCSR(
        indptr=resolve(entry["indptr"]),
        neighbors=resolve(entry["neighbors"]),
        deg=resolve(entry["deg"]),
    )


def is_csr_descriptor(obj: object) -> bool:
    """Whether ``obj`` is a :func:`pack_csr` descriptor triple."""
    return isinstance(obj, dict) and is_descriptor(obj.get("indptr"))
