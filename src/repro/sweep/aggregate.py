"""Join/aggregation layer: speed-up and model-ratio views of a sweep.

One sweep over the model axis produces rotor and walk cells side by
side; this module pairs them back up the way the paper's Table 1 does:

* **speed-up curves** — ``S(k) = C(n, 1) / C(n, k)`` per (model, n,
  placement), computed from the k = 1 baseline cell of the same sweep
  and re-using :class:`repro.analysis.speedup.SpeedupTable`, so the
  Θ-shape matching machinery (``Θ(k²)`` rotor best case vs
  ``Θ(k²/log²k)`` walks, Theorem 5) applies unchanged;
* **rotor-vs-walk ratios** — per (n, k, placement) cells present under
  both models, how many times the walk's mean cover time exceeds the
  deterministic rotor-router's; the walk cell's confidence interval
  (from :mod:`repro.util.stats`) propagates into a ratio interval
  since the rotor side is deterministic.

Everything operates on a completed
:class:`repro.sweep.executor.SweepResult` — the join is pure
bookkeeping; no simulation happens here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.speedup import (
    TABLE1_SHAPES,
    SpeedupRow,
    SpeedupTable,
    best_matching_shape,
)
from repro.sweep.executor import SweepResult
from repro.util.stats import summarize
from repro.util.tables import Table

#: Group key of one speed-up curve: (model, n, placement).
CurveKey = tuple[str, int, str]


@dataclass(frozen=True)
class CoverCell:
    """Aggregated cover value of one (model, n, k, placement) group.

    Sweeps fan random placements out over seeds; this collapses those
    sibling cells into one mean.  The CI bounds are the envelope of
    the member cells' intervals (walk cells carry their repetition CI;
    deterministic rotor cells a degenerate one).
    """

    model: str
    n: int
    k: int
    placement: str
    cover: float
    ci_low: float
    ci_high: float
    cells: int


def _cover_cells(result: SweepResult) -> dict[tuple[str, int, int, str], CoverCell]:
    """Collapse per-seed cells into (model, n, k, placement) groups.

    Cells without a usable cover value (truncated walk cells, rotor
    cells that exhausted their budget) are skipped — a group with no
    usable member simply does not appear.
    """
    by_group: dict[tuple[str, int, int, str], list] = {}
    for cell in result.results:
        cover = cell.metrics.get("cover")
        if cover is None:
            continue
        key = (cell.config.model, cell.config.n, cell.config.k,
               cell.config.placement)
        by_group.setdefault(key, []).append(cell)
    aggregated = {}
    for key, members in by_group.items():
        model, n, k, placement = key
        covers = [float(m.metrics["cover"]) for m in members]
        mean = summarize(covers).mean
        lows = [
            float(m.metrics.get("cover_ci_low", m.metrics["cover"]))
            for m in members
        ]
        highs = [
            float(m.metrics.get("cover_ci_high", m.metrics["cover"]))
            for m in members
        ]
        aggregated[key] = CoverCell(
            model=model, n=n, k=k, placement=placement,
            cover=mean, ci_low=min(lows), ci_high=max(highs),
            cells=len(members),
        )
    return aggregated


def speedup_curves(
    result: SweepResult, cells: dict | None = None
) -> dict[CurveKey, SpeedupTable]:
    """``S(k) = C(n,1)/C(n,k)`` per (model, n, placement) with a k=1 cell.

    Groups whose sweep did not include the k = 1 baseline are omitted
    (there is nothing to normalize against); within a group, ks appear
    in ascending order.  ``cells`` accepts a precomputed
    ``_cover_cells`` result so multi-view callers aggregate once.
    """
    if cells is None:
        cells = _cover_cells(result)
    curves: dict[CurveKey, SpeedupTable] = {}
    baselines = {
        (model, n, placement): cell
        for (model, n, k, placement), cell in cells.items()
        if k == 1 and cell.cover > 0
    }
    for curve_key, baseline in sorted(baselines.items()):
        model, n, placement = curve_key
        ks = sorted(
            k
            for (m, cn, k, p), cell in cells.items()
            if (m, cn, p) == (model, n, placement) and cell.cover > 0
        )
        rows = tuple(
            SpeedupRow(
                k=k,
                cover_time=cells[(model, n, k, placement)].cover,
                speedup=baseline.cover / cells[(model, n, k, placement)].cover,
            )
            for k in ks
        )
        curves[curve_key] = SpeedupTable(n=n, rows=rows)
    return curves


def speedup_table(
    result: SweepResult, cells: dict | None = None
) -> Table | None:
    """Render every speed-up curve of the sweep as one table.

    Returns None when the sweep has no k = 1 baseline cell (speed-up
    undefined), so callers can append it only when meaningful.  Each
    curve with at least two distinct ks also reports its best-matching
    Table 1 shape (flatness of ``S(k)/shape(k)``; 1.0 is a perfect
    Θ-match) on its last row.
    """
    curves = speedup_curves(result, cells)
    if not curves:
        return None
    table = Table(
        columns=["model", "n", "placement", "k", "cover", "S(k)",
                 "best shape", "flatness"],
        caption=f"speed-up S(k) = C(n,1)/C(n,k) from sweep "
        f"'{result.spec.name}'",
        formats=[None, "d", None, "d", ".1f", ".3f", None, ".2f"],
    )
    for (model, n, placement), curve in curves.items():
        shape_name, flat = (None, None)
        if len(set(curve.ks())) > 1:
            shape_name, flat = best_matching_shape(curve, TABLE1_SHAPES)
        for row in curve.rows:
            last = row is curve.rows[-1]
            table.add_row(
                model, n, placement, row.k, row.cover_time, row.speedup,
                shape_name if last else None, flat if last else None,
            )
    return table


def model_ratio_table(
    result: SweepResult, cells: dict | None = None
) -> Table | None:
    """Walk-over-rotor cover ratios for cells present under both models.

    The ratio answers the paper's comparative question directly: how
    much slower are k random walks than the deterministic rotor-router
    from the same placement?  The walk CI maps to a ratio interval by
    dividing its bounds by the (deterministic) rotor value.  Returns
    None when the sweep has no (n, k, placement) pair covered by both
    models.
    """
    if cells is None:
        cells = _cover_cells(result)
    pairs = sorted(
        (n, k, placement)
        for (model, n, k, placement), cell in cells.items()
        if model == "rotor"
        and cell.cover > 0  # k >= n placements cover at round 0
        and ("walk", n, k, placement) in cells
    )
    if not pairs:
        return None
    table = Table(
        columns=["n", "k", "placement", "rotor cover", "walk mean",
                 "walk CI low", "walk CI high", "walk/rotor"],
        caption=f"rotor vs random-walk cover times from sweep "
        f"'{result.spec.name}'",
        formats=["d", "d", None, ".1f", ".1f", ".1f", ".1f", ".2f"],
    )
    for n, k, placement in pairs:
        rotor = cells[("rotor", n, k, placement)]
        walk = cells[("walk", n, k, placement)]
        table.add_row(
            n, k, placement, rotor.cover, walk.cover,
            walk.ci_low, walk.ci_high, walk.cover / rotor.cover,
        )
    return table


def summary_tables(result: SweepResult) -> list[Table]:
    """Every applicable aggregate view of ``result``, in display order."""
    cells = _cover_cells(result)
    return [
        table
        for table in (
            speedup_table(result, cells),
            model_ratio_table(result, cells),
        )
        if table is not None
    ]
