"""Declarative sweep scenarios: the grid language and config hashing.

A :class:`ScenarioSpec` names a parameter grid — ring sizes, agent
counts, initialization families (a named placement from
:mod:`repro.core.placement` paired with a named pointer initialization
from :mod:`repro.core.pointers`), seeds and metrics — and expands into
concrete :class:`SweepConfig` cells.  Every cell carries a
deterministic SHA-256 ``config_hash`` over its canonical identity, so
results can be cached on disk and shared between scenarios: two specs
that happen to contain the same cell hit the same cache entry.

The vocabulary is intentionally the paper's: ``all_on_one/toward_node0``
is the Theorem 1 worst case, ``equally_spaced/negative`` the Theorem 3
placement under the Theorem 4 adversary, and so on.  Random families
(``random`` placement or pointers) fan out over the spec's seeds;
deterministic families collapse to a single seed so the grid never
recomputes identical cells.

Specs also carry a **model axis**: every cell simulates either the
deterministic rotor-router (``model="rotor"``) or the paper's baseline
of k independent random walks (``model="walk"``).  Walk cells ignore
pointer initializations (walks have no rotors — the pointer name is
normalized to :data:`WALK_POINTER`) and fan out over ``repetitions``
seeded repetitions *inside* the cell, coming back as mean/CI metrics.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Sequence

from repro.core import placement as _placement
from repro.core import pointers as _pointers
from repro.util.rng import derive_seed, make_rng

#: Bump when the identity layout or initializer semantics change, so
#: stale cache entries from older code are never served.
#: v2: added the ``model`` axis and the ``repetitions`` field.
SCHEMA_VERSION = 2

#: Metrics a sweep can record per cell.
METRICS = ("cover", "stabilization", "return")

#: Simulation models a cell can run.
MODELS = ("rotor", "walk")

#: Metrics each model supports: random walks have no rotors, hence no
#: limit cycle to stabilize into and no deterministic return gaps.
MODEL_METRICS = {
    "rotor": frozenset(METRICS),
    "walk": frozenset({"cover"}),
}

#: Pointer-name sentinel for walk cells: walks have no rotors, so all
#: pointer initializations collapse to this one name (otherwise two
#: families sharing a placement would split one walk measurement into
#: two cache identities).
WALK_POINTER = "none"

PlacementFn = Callable[[int, int, int], list[int]]
PointerFn = Callable[[int, Sequence[int], int], list[int]]


def _clustered(n: int, k: int, seed: int) -> list[int]:
    # sqrt(k) clusters: halfway between all-on-one and fully spread.
    clusters = min(n, max(1, math.isqrt(k)))
    return _placement.clustered(n, k, clusters, seed=seed)


#: name -> (n, k, seed) -> agent starting nodes.
PLACEMENTS: dict[str, PlacementFn] = {
    "all_on_one": lambda n, k, seed: _placement.all_on_one(k),
    "equally_spaced": lambda n, k, seed: _placement.equally_spaced(n, k),
    "half_ring": lambda n, k, seed: _placement.half_ring(n, k),
    "clustered": _clustered,
    "random": lambda n, k, seed: _placement.random_nodes(n, k, seed=seed),
}

#: name -> (n, agents, seed) -> pointer directions (+1/-1 per node).
POINTERS: dict[str, PointerFn] = {
    "toward_node0": lambda n, agents, seed: _pointers.ring_toward_node(n, 0),
    "negative": lambda n, agents, seed: _pointers.ring_negative(n, agents),
    "positive": lambda n, agents, seed: _pointers.ring_positive(n, agents),
    "uniform": lambda n, agents, seed: _pointers.ring_uniform(n),
    "alternating": lambda n, agents, seed: _pointers.ring_alternating(n),
    "random": lambda n, agents, seed: _pointers.ring_random(n, seed=seed),
}

#: Initializers whose output depends on the seed.
RANDOM_PLACEMENTS = frozenset({"random", "clustered"})
RANDOM_POINTERS = frozenset({"random"})


@dataclass(frozen=True)
class InitFamily:
    """A named (placement, pointer) initialization pair."""

    placement: str
    pointer: str

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"known: {sorted(PLACEMENTS)}"
            )
        if self.pointer not in POINTERS:
            raise ValueError(
                f"unknown pointer init {self.pointer!r}; "
                f"known: {sorted(POINTERS)}"
            )

    @property
    def name(self) -> str:
        return f"{self.placement}/{self.pointer}"

    @property
    def is_random(self) -> bool:
        return (
            self.placement in RANDOM_PLACEMENTS
            or self.pointer in RANDOM_POINTERS
        )


@dataclass(frozen=True)
class SweepConfig:
    """One concrete cell of a sweep grid.

    The identity — and hence the cache key — is everything that
    determines the simulation's outputs: the model, the ring size,
    agent count, both initializer names, the seed, the repetition
    count, the metric set and the round budget.  The scenario name is
    deliberately *not* part of it.

    Walk cells (``model="walk"``) carry the :data:`WALK_POINTER`
    sentinel instead of a pointer name and a ``repetitions`` count > 1:
    the cell is one stochastic measurement whose repetitions run on
    independent derived seeds (:meth:`rep_seeds`) and aggregate into
    mean/CI metrics.
    """

    n: int
    k: int
    placement: str
    pointer: str
    seed: int
    metrics: tuple[str, ...]
    max_rounds: int
    model: str = "rotor"
    repetitions: int = 1

    def identity(self) -> dict:
        """Canonical JSON-stable identity used for hashing and caching."""
        return {
            "schema": SCHEMA_VERSION,
            "model": self.model,
            "n": self.n,
            "k": self.k,
            "placement": self.placement,
            "pointer": self.pointer,
            "seed": self.seed,
            "repetitions": self.repetitions,
            "metrics": list(self.metrics),
            "max_rounds": self.max_rounds,
        }

    @cached_property
    def config_hash(self) -> str:
        # Cached: the executor, store probes and result assembly all
        # key on the hash, and the identity is frozen — recomputing
        # the dump + digest per access dominated batched cache probes.
        text = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @property
    def family(self) -> InitFamily:
        """The named initialization pair (rotor cells only: walk cells
        carry the ``none`` pointer sentinel, which is not a family)."""
        return InitFamily(self.placement, self.pointer)

    def build_agents(self) -> list[int]:
        """Materialize the agent placement for this cell.

        Shared by both models — a rotor cell and a walk cell with the
        same (n, k, placement, seed) start from identical positions, so
        rotor-vs-walk comparisons are placement-for-placement fair.
        """
        return PLACEMENTS[self.placement](
            self.n, self.k, derive_seed(self.seed, "placement", self.n, self.k)
        )

    def build(self) -> tuple[list[int], list[int]]:
        """Materialize ``(agents, directions)`` for a rotor cell.

        Placement and pointer draws get independent derived streams so
        adding one initializer never shifts another's randomness.
        """
        if self.model != "rotor":
            raise ValueError(
                f"build() is rotor-only; {self.model!r} cells have no "
                "pointer directions (use build_agents / rep_seeds)"
            )
        agents = self.build_agents()
        directions = POINTERS[self.pointer](
            self.n, agents, derive_seed(self.seed, "pointer", self.n, self.k)
        )
        return agents, directions

    def rep_seeds(self) -> tuple[int, ...]:
        """Independent derived seeds, one per stochastic repetition.

        Each seed is exactly what a standalone
        :class:`repro.randomwalk.ring_walk.RingRandomWalks` run of this
        cell's repetition would receive — the batch walk kernel is
        pinned to it seed-for-seed.
        """
        return tuple(
            derive_seed(self.seed, "walk-cover", self.n, self.k, rep)
            for rep in range(self.repetitions)
        )

    def to_dict(self) -> dict:
        """Plain-dict form (pickled to worker processes, stored in cache)."""
        return self.identity()

    @classmethod
    def from_dict(cls, data: dict) -> "SweepConfig":
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"config schema {data.get('schema')!r} does not match "
                f"{SCHEMA_VERSION}"
            )
        return cls(
            n=int(data["n"]),
            k=int(data["k"]),
            placement=str(data["placement"]),
            pointer=str(data["pointer"]),
            seed=int(data["seed"]),
            metrics=tuple(data["metrics"]),
            max_rounds=int(data["max_rounds"]),
            model=str(data["model"]),
            repetitions=int(data["repetitions"]),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative sweep: the full grid plus what to measure.

    ``configs()`` expands the grid ``ns x ks x families x seeds``
    (seeds collapse to the first one for deterministic families) into
    :class:`SweepConfig` cells; ``spec_hash`` is a deterministic digest
    of the whole expansion, used to label sweep runs.
    """

    name: str
    ns: tuple[int, ...]
    ks: tuple[int, ...]
    families: tuple[InitFamily, ...]
    metrics: tuple[str, ...] = ("cover",)
    seeds: tuple[int, ...] = (0,)
    #: Which simulation models to sweep; walk cells are stochastic and
    #: fan out over ``repetitions`` internal repetitions.
    models: tuple[str, ...] = ("rotor",)
    #: Repetitions per stochastic (walk) cell; rotor cells are
    #: deterministic and always run once.
    repetitions: int = 1
    #: Round budget per cell: ``max_rounds_factor * n² + 1024``.  The
    #: default covers both cover runs (<= 8 n² in the worst case) and
    #: Brent's stabilization search (preperiod is O(n²) on the ring).
    max_rounds_factor: int = 16
    description: str = field(default="", compare=False)
    #: Scheduling hints for the executor — lanes per kernel chunk,
    #: walker cap per walk chunk, and the limit-cycle pipeline's
    #: lane-compaction threshold.  ``None`` defers to the executor
    #: defaults; explicit ``run_sweep`` arguments override either.
    #: Deliberately excluded from cell identities and hashes: they
    #: change how the grid is batched, never what any cell computes.
    chunk_lanes: int | None = field(default=None, compare=False)
    walk_chunk_walkers: int | None = field(default=None, compare=False)
    compact_ratio: float | None = field(default=None, compare=False)
    #: Round-fusion factor hint for the batch kernels; ``None`` keeps
    #: each kernel's tuned default.  Identity-neutral like the other
    #: hints: every fusion factor computes bit-identical results.
    fuse_rounds: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.ns or any(n < 3 for n in self.ns):
            raise ValueError(f"ns must be non-empty with every n >= 3: {self.ns}")
        if not self.ks or any(k < 1 for k in self.ks):
            raise ValueError(f"ks must be non-empty with every k >= 1: {self.ks}")
        if not self.families:
            raise ValueError("at least one initialization family is required")
        if not self.metrics:
            raise ValueError("at least one metric is required")
        for metric in self.metrics:
            if metric not in METRICS:
                raise ValueError(
                    f"unknown metric {metric!r}; known: {METRICS}"
                )
        if not self.models:
            raise ValueError("at least one model is required")
        for model in self.models:
            if model not in MODELS:
                raise ValueError(
                    f"unknown model {model!r}; known: {MODELS}"
                )
            unsupported = set(self.metrics) - MODEL_METRICS[model]
            if unsupported:
                raise ValueError(
                    f"model {model!r} does not support metrics "
                    f"{sorted(unsupported)}; supported: "
                    f"{sorted(MODEL_METRICS[model])}"
                )
        if self.repetitions < 1:
            raise ValueError(
                f"repetitions must be positive, got {self.repetitions}"
            )
        if not self.seeds:
            raise ValueError("at least one seed is required")
        if self.max_rounds_factor < 1:
            raise ValueError("max_rounds_factor must be positive")
        if self.chunk_lanes is not None and self.chunk_lanes < 1:
            raise ValueError(
                f"chunk_lanes hint must be positive, got {self.chunk_lanes}"
            )
        if self.walk_chunk_walkers is not None and self.walk_chunk_walkers < 1:
            raise ValueError(
                "walk_chunk_walkers hint must be positive, got "
                f"{self.walk_chunk_walkers}"
            )
        if self.compact_ratio is not None:
            # Shared validator: one definition of the legal range.
            from repro.sweep.batch_ring import _check_compact_ratio

            _check_compact_ratio(self.compact_ratio)
        if self.fuse_rounds is not None and self.fuse_rounds < 1:
            raise ValueError(
                f"fuse_rounds hint must be positive, got {self.fuse_rounds}"
            )

    def budget(self, n: int) -> int:
        return self.max_rounds_factor * n * n + 1024

    def configs(self) -> list[SweepConfig]:
        """Expand the grid into concrete cells, in deterministic order.

        Deterministic families ignore the seed, so they collapse to a
        single cell with seed 0 — normalizing the identity ensures two
        specs with different seed lists still share cache entries for
        their deterministic cells.  Duplicate grid entries (repeated
        sizes, repeated families) expand once, keeping cell counts,
        progress totals and cache statistics consistent.

        Walk cells normalize the pointer name to :data:`WALK_POINTER`
        (walks have no rotors), so families sharing a placement expand
        to one walk cell; their seed collapses unless the *placement*
        is random — the stochastic walk itself varies over the cell's
        internal repetitions, not over the spec's seed axis.
        """
        cells: list[SweepConfig] = []
        seen: set[tuple] = set()
        metrics = tuple(self.metrics)
        for model in self.models:
            for n in self.ns:
                for k in self.ks:
                    for family in self.families:
                        if model == "walk":
                            pointer = WALK_POINTER
                            repetitions = self.repetitions
                            fan_seeds = family.placement in RANDOM_PLACEMENTS
                        else:
                            pointer = family.pointer
                            repetitions = 1
                            fan_seeds = family.is_random
                        seeds = self.seeds if fan_seeds else (0,)
                        for seed in seeds:
                            cell_id = (
                                model, n, k, family.placement, pointer, seed
                            )
                            if cell_id in seen:
                                continue
                            seen.add(cell_id)
                            cells.append(
                                SweepConfig(
                                    n=n,
                                    k=k,
                                    placement=family.placement,
                                    pointer=pointer,
                                    seed=seed,
                                    metrics=metrics,
                                    max_rounds=self.budget(n),
                                    model=model,
                                    repetitions=repetitions,
                                )
                            )
        return cells

    @property
    def spec_hash(self) -> str:
        digest = hashlib.sha256()
        for config in self.configs():
            digest.update(config.config_hash.encode("ascii"))
        return digest.hexdigest()

    @property
    def num_configs(self) -> int:
        return len(self.configs())


def general_instance(
    graph: Any, k: int, seed: int
) -> tuple[list[int], list[int]]:
    """The seeded ``(agents, ports)`` instance of one general-graph cell.

    One RNG stream draws the k agent positions first, then the pointer
    ports — the historical derivation of the Yanovski speed-up study
    (:mod:`repro.experiments.speedup_graphs`), kept verbatim so sweep
    scenarios and the experiment share cache entries cell for cell.
    """
    rng = make_rng(derive_seed(seed, "speedup", graph.num_nodes, k))
    agents = [int(rng.integers(0, graph.num_nodes)) for _ in range(k)]
    ports = _pointers.random_ports(graph, rng)
    return agents, ports


@dataclass(frozen=True)
class GeneralScenarioSpec:
    """A declarative sweep over general-graph rotor-router cover cells.

    The grid is ``graphs x ks x seeds``: every cell is one seeded
    (placement, pointer) instance (:func:`general_instance`) of a named
    graph, materialized as a
    :class:`repro.sweep.cells.LabeledGeneralRotorCell` — so the cells
    run through the batched CSR kernel, cache by their (graph digest,
    agents, ports, budget) identity, and render in sweep tables under
    their family name.  Include ``1`` in ``ks`` to anchor the
    aggregate speed-up view ``S(k) = C(1)/C(k)``.

    Graph instances (not factories) are part of the spec, so the spec
    is hashable and its expansion deterministic; budgets follow the
    same ``16·diam·m + 64`` rule as the analysis backend.
    """

    name: str
    #: ``(family name, PortLabeledGraph)`` pairs; duck-typed (the spec
    #: only needs ``diameter()``/``num_edges``/``num_nodes``).
    graphs: tuple[tuple[str, Any], ...]
    ks: tuple[int, ...]
    seeds: tuple[int, ...] = (0,)
    description: str = field(default="", compare=False)
    #: Scheduling hints, mirroring :class:`ScenarioSpec` (the executor
    #: reads them duck-typed); identity-neutral.
    chunk_lanes: int | None = field(default=None, compare=False)
    walk_chunk_walkers: int | None = field(default=None, compare=False)
    compact_ratio: float | None = field(default=None, compare=False)
    fuse_rounds: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.graphs:
            raise ValueError("at least one graph family is required")
        if not self.ks or any(k < 1 for k in self.ks):
            raise ValueError(
                f"ks must be non-empty with every k >= 1: {self.ks}"
            )
        if not self.seeds:
            raise ValueError("at least one seed is required")
        if self.fuse_rounds is not None and self.fuse_rounds < 1:
            raise ValueError(
                f"fuse_rounds hint must be positive, got {self.fuse_rounds}"
            )

    def budget(self, graph: Any) -> int:
        return 16 * graph.diameter() * graph.num_edges + 64

    def configs(self) -> list:
        from repro.sweep.cells import LabeledGeneralRotorCell

        cells: list[LabeledGeneralRotorCell] = []
        for family, graph in self.graphs:
            budget = self.budget(graph)
            for k in self.ks:
                for seed in self.seeds:
                    agents, ports = general_instance(graph, k, seed)
                    cells.append(
                        LabeledGeneralRotorCell.from_graph(
                            graph, agents, ports, budget,
                            family=family, seed=seed,
                        )
                    )
        return cells

    @property
    def spec_hash(self) -> str:
        digest = hashlib.sha256()
        for config in self.configs():
            digest.update(config.config_hash.encode("ascii"))
        return digest.hexdigest()

    @property
    def num_configs(self) -> int:
        return len(self.configs())
