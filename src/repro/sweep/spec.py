"""Declarative sweep scenarios: the grid language and config hashing.

A :class:`ScenarioSpec` names a parameter grid — ring sizes, agent
counts, initialization families (a named placement from
:mod:`repro.core.placement` paired with a named pointer initialization
from :mod:`repro.core.pointers`), seeds and metrics — and expands into
concrete :class:`SweepConfig` cells.  Every cell carries a
deterministic SHA-256 ``config_hash`` over its canonical identity, so
results can be cached on disk and shared between scenarios: two specs
that happen to contain the same cell hit the same cache entry.

The vocabulary is intentionally the paper's: ``all_on_one/toward_node0``
is the Theorem 1 worst case, ``equally_spaced/negative`` the Theorem 3
placement under the Theorem 4 adversary, and so on.  Random families
(``random`` placement or pointers) fan out over the spec's seeds;
deterministic families collapse to a single seed so the grid never
recomputes identical cells.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core import placement as _placement
from repro.core import pointers as _pointers
from repro.util.rng import derive_seed

#: Bump when the identity layout or initializer semantics change, so
#: stale cache entries from older code are never served.
SCHEMA_VERSION = 1

#: Metrics a sweep can record per cell.
METRICS = ("cover", "stabilization", "return")

PlacementFn = Callable[[int, int, int], list[int]]
PointerFn = Callable[[int, Sequence[int], int], list[int]]


def _clustered(n: int, k: int, seed: int) -> list[int]:
    # sqrt(k) clusters: halfway between all-on-one and fully spread.
    clusters = min(n, max(1, math.isqrt(k)))
    return _placement.clustered(n, k, clusters, seed=seed)


#: name -> (n, k, seed) -> agent starting nodes.
PLACEMENTS: dict[str, PlacementFn] = {
    "all_on_one": lambda n, k, seed: _placement.all_on_one(k),
    "equally_spaced": lambda n, k, seed: _placement.equally_spaced(n, k),
    "half_ring": lambda n, k, seed: _placement.half_ring(n, k),
    "clustered": _clustered,
    "random": lambda n, k, seed: _placement.random_nodes(n, k, seed=seed),
}

#: name -> (n, agents, seed) -> pointer directions (+1/-1 per node).
POINTERS: dict[str, PointerFn] = {
    "toward_node0": lambda n, agents, seed: _pointers.ring_toward_node(n, 0),
    "negative": lambda n, agents, seed: _pointers.ring_negative(n, agents),
    "positive": lambda n, agents, seed: _pointers.ring_positive(n, agents),
    "uniform": lambda n, agents, seed: _pointers.ring_uniform(n),
    "alternating": lambda n, agents, seed: _pointers.ring_alternating(n),
    "random": lambda n, agents, seed: _pointers.ring_random(n, seed=seed),
}

#: Initializers whose output depends on the seed.
RANDOM_PLACEMENTS = frozenset({"random", "clustered"})
RANDOM_POINTERS = frozenset({"random"})


@dataclass(frozen=True)
class InitFamily:
    """A named (placement, pointer) initialization pair."""

    placement: str
    pointer: str

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"known: {sorted(PLACEMENTS)}"
            )
        if self.pointer not in POINTERS:
            raise ValueError(
                f"unknown pointer init {self.pointer!r}; "
                f"known: {sorted(POINTERS)}"
            )

    @property
    def name(self) -> str:
        return f"{self.placement}/{self.pointer}"

    @property
    def is_random(self) -> bool:
        return (
            self.placement in RANDOM_PLACEMENTS
            or self.pointer in RANDOM_POINTERS
        )


@dataclass(frozen=True)
class SweepConfig:
    """One concrete cell of a sweep grid.

    The identity — and hence the cache key — is everything that
    determines the simulation's outputs: the ring size, agent count,
    both initializer names, the seed, the metric set and the round
    budget.  The scenario name is deliberately *not* part of it.
    """

    n: int
    k: int
    placement: str
    pointer: str
    seed: int
    metrics: tuple[str, ...]
    max_rounds: int

    def identity(self) -> dict:
        """Canonical JSON-stable identity used for hashing and caching."""
        return {
            "schema": SCHEMA_VERSION,
            "n": self.n,
            "k": self.k,
            "placement": self.placement,
            "pointer": self.pointer,
            "seed": self.seed,
            "metrics": list(self.metrics),
            "max_rounds": self.max_rounds,
        }

    @property
    def config_hash(self) -> str:
        text = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @property
    def family(self) -> InitFamily:
        return InitFamily(self.placement, self.pointer)

    def build(self) -> tuple[list[int], list[int]]:
        """Materialize ``(agents, directions)`` for this cell.

        Placement and pointer draws get independent derived streams so
        adding one initializer never shifts another's randomness.
        """
        agents = PLACEMENTS[self.placement](
            self.n, self.k, derive_seed(self.seed, "placement", self.n, self.k)
        )
        directions = POINTERS[self.pointer](
            self.n, agents, derive_seed(self.seed, "pointer", self.n, self.k)
        )
        return agents, directions

    def to_dict(self) -> dict:
        """Plain-dict form (pickled to worker processes, stored in cache)."""
        return self.identity()

    @classmethod
    def from_dict(cls, data: dict) -> "SweepConfig":
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"config schema {data.get('schema')!r} does not match "
                f"{SCHEMA_VERSION}"
            )
        return cls(
            n=int(data["n"]),
            k=int(data["k"]),
            placement=str(data["placement"]),
            pointer=str(data["pointer"]),
            seed=int(data["seed"]),
            metrics=tuple(data["metrics"]),
            max_rounds=int(data["max_rounds"]),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative sweep: the full grid plus what to measure.

    ``configs()`` expands the grid ``ns x ks x families x seeds``
    (seeds collapse to the first one for deterministic families) into
    :class:`SweepConfig` cells; ``spec_hash`` is a deterministic digest
    of the whole expansion, used to label sweep runs.
    """

    name: str
    ns: tuple[int, ...]
    ks: tuple[int, ...]
    families: tuple[InitFamily, ...]
    metrics: tuple[str, ...] = ("cover",)
    seeds: tuple[int, ...] = (0,)
    #: Round budget per cell: ``max_rounds_factor * n² + 1024``.  The
    #: default covers both cover runs (<= 8 n² in the worst case) and
    #: Brent's stabilization search (preperiod is O(n²) on the ring).
    max_rounds_factor: int = 16
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.ns or any(n < 3 for n in self.ns):
            raise ValueError(f"ns must be non-empty with every n >= 3: {self.ns}")
        if not self.ks or any(k < 1 for k in self.ks):
            raise ValueError(f"ks must be non-empty with every k >= 1: {self.ks}")
        if not self.families:
            raise ValueError("at least one initialization family is required")
        if not self.metrics:
            raise ValueError("at least one metric is required")
        for metric in self.metrics:
            if metric not in METRICS:
                raise ValueError(
                    f"unknown metric {metric!r}; known: {METRICS}"
                )
        if not self.seeds:
            raise ValueError("at least one seed is required")
        if self.max_rounds_factor < 1:
            raise ValueError("max_rounds_factor must be positive")

    def budget(self, n: int) -> int:
        return self.max_rounds_factor * n * n + 1024

    def configs(self) -> list[SweepConfig]:
        """Expand the grid into concrete cells, in deterministic order.

        Deterministic families ignore the seed, so they collapse to a
        single cell with seed 0 — normalizing the identity ensures two
        specs with different seed lists still share cache entries for
        their deterministic cells.  Duplicate grid entries (repeated
        sizes, repeated families) expand once, keeping cell counts,
        progress totals and cache statistics consistent.
        """
        cells: list[SweepConfig] = []
        seen: set[tuple] = set()
        metrics = tuple(self.metrics)
        for n in self.ns:
            for k in self.ks:
                for family in self.families:
                    seeds = self.seeds if family.is_random else (0,)
                    for seed in seeds:
                        cell_id = (n, k, family.placement, family.pointer, seed)
                        if cell_id in seen:
                            continue
                        seen.add(cell_id)
                        cells.append(
                            SweepConfig(
                                n=n,
                                k=k,
                                placement=family.placement,
                                pointer=family.pointer,
                                seed=seed,
                                metrics=metrics,
                                max_rounds=self.budget(n),
                            )
                        )
        return cells

    @property
    def spec_hash(self) -> str:
        digest = hashlib.sha256()
        for config in self.configs():
            digest.update(config.config_hash.encode("ascii"))
        return digest.hexdigest()

    @property
    def num_configs(self) -> int:
        return len(self.configs())
