"""Explicit measurement cells: experiment requests as sweep work units.

The grid language of :mod:`repro.sweep.spec` names its cells by
*family* (``equally_spaced/negative``); the paper-reproduction
experiments instead materialize concrete instances — explicit agent
lists, explicit pointer arrays, explicit repetition seeds — because
their seed derivations predate the sweep subsystem and must stay
bit-identical across backends.  This module gives those explicit
requests first-class sweep citizenship: each cell type carries the
fully materialized instance, hashes it into a deterministic
``config_hash`` (so the executor's on-disk cache works for experiment
cells exactly as it does for scenario cells), and exposes the same
duck-typed surface the executor's chunk planner and kernels consume
(``model``/``n``/``k``/``metrics``/``max_rounds``/``repetitions`` plus
``build``/``build_agents``/``rep_seeds``).

Four cell kinds cover every measurement the experiments make:

* :class:`RotorCell` — deterministic rotor-router lanes on the ring
  (cover and/or limit-cycle stabilization + return gaps);
* :class:`WalkCoverCell` — one stochastic cover measurement fanned over
  explicit per-repetition seeds (seed-for-seed equal to the serial
  :func:`repro.randomwalk.cover.estimate_cover_time` harness);
* :class:`WalkGapsCell` — visit-gap statistics of k walkers at one
  node (the Table 1 return-time contrast column);
* :class:`GeneralRotorCell` — rotor-router cover on an arbitrary
  port-labeled graph (the Yanovski speed-up extension); lanes batch
  through the CSR kernel of :mod:`repro.sweep.batch_general`, with
  the graph structure carried once per chunk in a digest-keyed table
  instead of once per cell.

``cell_from_dict`` is the executor's deserializer: worker processes
receive plain dicts and dispatch on the ``kind`` marker (absent for
classic :class:`repro.sweep.spec.SweepConfig` cells).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Iterable, Mapping

#: Bump when any explicit cell's identity layout or measurement
#: semantics change, so stale cache entries are never served.
#: v2: general cells identify their graph by CSR digest instead of
#: embedding the full O(m) port lists in every cell's identity.
CELL_SCHEMA_VERSION = 2


def _hash_identity(identity: dict) -> str:
    text = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RotorCell:
    """One explicit rotor-router instance on the ring.

    ``metrics`` chooses the measurement: ``("cover",)`` for the cover
    round, ``("stabilization", "return")`` for Brent's limit cycle plus
    in-cycle visit gaps (the executor computes both from one pipeline
    pass).  The identity is the full instance, so two experiments
    requesting the same (n, agents, directions, metrics, budget) share
    one cache entry regardless of how they derived it.
    """

    n: int
    agents: tuple[int, ...]
    directions: tuple[int, ...]
    metrics: tuple[str, ...]
    max_rounds: int

    model = "rotor"
    repetitions = 1

    def __post_init__(self) -> None:
        if not self.agents:
            raise ValueError("at least one agent is required")
        if len(self.directions) != self.n:
            raise ValueError(
                f"expected {self.n} pointer directions, "
                f"got {len(self.directions)}"
            )
        if not self.metrics:
            raise ValueError("at least one metric is required")

    @property
    def k(self) -> int:
        return len(self.agents)

    def identity(self) -> dict:
        return {
            "kind": "rotor-cell",
            "schema": CELL_SCHEMA_VERSION,
            "n": self.n,
            "agents": list(self.agents),
            "directions": list(self.directions),
            "metrics": list(self.metrics),
            "max_rounds": self.max_rounds,
        }

    @cached_property
    def config_hash(self) -> str:
        return _hash_identity(self.identity())

    def build(self) -> tuple[list[int], list[int]]:
        """``(agents, directions)`` — mirrors ``SweepConfig.build``."""
        return list(self.agents), list(self.directions)

    def to_dict(self) -> dict:
        return self.identity()

    @classmethod
    def from_dict(cls, data: dict) -> "RotorCell":
        _check_schema(data, "rotor-cell")
        return cls(
            n=int(data["n"]),
            agents=tuple(int(a) for a in data["agents"]),
            directions=tuple(int(d) for d in data["directions"]),
            metrics=tuple(data["metrics"]),
            max_rounds=int(data["max_rounds"]),
        )


@dataclass(frozen=True)
class WalkCoverCell:
    """One stochastic cover measurement over explicit repetition seeds.

    Each seed is consumed exactly as a standalone
    :class:`repro.randomwalk.ring_walk.RingRandomWalks` run would
    consume it, so the batch kernel's per-repetition cover rounds are
    seed-for-seed those of the serial repetition harness.  Metrics
    always include the raw per-repetition samples (``cover_samples``),
    letting callers rebuild the exact serial
    :class:`repro.randomwalk.cover.CoverEstimate`.
    """

    n: int
    agents: tuple[int, ...]
    seeds: tuple[int, ...]
    max_rounds: int

    model = "walk"
    metrics = ("cover",)
    #: The walk chunk records per-repetition samples for these cells.
    record_samples = True

    def __post_init__(self) -> None:
        if not self.agents:
            raise ValueError("at least one walker is required")
        if not self.seeds:
            raise ValueError("at least one repetition seed is required")

    @property
    def k(self) -> int:
        return len(self.agents)

    @property
    def repetitions(self) -> int:
        return len(self.seeds)

    def identity(self) -> dict:
        return {
            "kind": "walk-cover-cell",
            "schema": CELL_SCHEMA_VERSION,
            "n": self.n,
            "agents": list(self.agents),
            "seeds": list(self.seeds),
            "max_rounds": self.max_rounds,
        }

    @cached_property
    def config_hash(self) -> str:
        return _hash_identity(self.identity())

    def build_agents(self) -> list[int]:
        return list(self.agents)

    def rep_seeds(self) -> tuple[int, ...]:
        return self.seeds

    def to_dict(self) -> dict:
        return self.identity()

    @classmethod
    def from_dict(cls, data: dict) -> "WalkCoverCell":
        _check_schema(data, "walk-cover-cell")
        return cls(
            n=int(data["n"]),
            agents=tuple(int(a) for a in data["agents"]),
            seeds=tuple(int(s) for s in data["seeds"]),
            max_rounds=int(data["max_rounds"]),
        )


@dataclass(frozen=True)
class WalkGapsCell:
    """Visit-gap statistics of k equally spaced walkers at one node.

    Wraps :func:`repro.randomwalk.visits.ring_walk_gap_statistics`:
    the cell stores that function's raw arguments, so both backends
    invoke the identical measurement and the gain comes from chunked
    parallelism, caching, and the vectorized visits kernel.
    """

    n: int
    k: int
    node: int
    observation_rounds: int
    burn_in: int
    seed: int

    model = "walk"
    metrics = ("gaps",)
    repetitions = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")
        if not 0 <= self.node < self.n:
            raise ValueError(f"node {self.node} out of range for n={self.n}")
        if self.observation_rounds < 1:
            raise ValueError("observation_rounds must be positive")
        if self.burn_in < 0:
            raise ValueError("burn_in must be non-negative")

    @property
    def max_rounds(self) -> int:
        """Total simulated rounds; doubles as the chunk group key."""
        return self.burn_in + self.observation_rounds

    def identity(self) -> dict:
        return {
            "kind": "walk-gaps-cell",
            "schema": CELL_SCHEMA_VERSION,
            "n": self.n,
            "k": self.k,
            "node": self.node,
            "observation_rounds": self.observation_rounds,
            "burn_in": self.burn_in,
            "seed": self.seed,
        }

    @cached_property
    def config_hash(self) -> str:
        return _hash_identity(self.identity())

    def to_dict(self) -> dict:
        return self.identity()

    @classmethod
    def from_dict(cls, data: dict) -> "WalkGapsCell":
        _check_schema(data, "walk-gaps-cell")
        return cls(
            n=int(data["n"]),
            k=int(data["k"]),
            node=int(data["node"]),
            observation_rounds=int(data["observation_rounds"]),
            burn_in=int(data["burn_in"]),
            seed=int(data["seed"]),
        )


@dataclass(frozen=True)
class GeneralRotorCell:
    """Rotor-router cover time on an arbitrary port-labeled graph.

    The identity names the graph by the content digest of its CSR
    packing (:class:`repro.graphs.base.GraphCSR`), so topologically
    identical graphs built by different factories still share cache
    entries — while a cell's serialized form shrinks to O(n + k) (the
    pointer and agent vectors) instead of re-embedding the full O(m)
    port lists once per seed.  The port structure itself travels once per executor chunk
    in a digest-keyed graph table (see
    :func:`repro.sweep.executor._plan_chunks`), and chunks dispatch to
    the batched CSR kernel of :mod:`repro.sweep.batch_general`.
    """

    graph_ports: tuple[tuple[int, ...], ...]
    agents: tuple[int, ...]
    ports: tuple[int, ...]
    max_rounds: int

    model = "rotor-general"
    metrics = ("cover",)
    repetitions = 1

    def __post_init__(self) -> None:
        if not self.agents:
            raise ValueError("at least one agent is required")
        if len(self.ports) != len(self.graph_ports):
            raise ValueError(
                f"expected {len(self.graph_ports)} pointer ports, "
                f"got {len(self.ports)}"
            )

    @classmethod
    def from_graph(
        cls,
        graph: Any,
        agents: Iterable[int],
        ports: Iterable[int],
        max_rounds: int,
        **extra: Any,
    ) -> "GeneralRotorCell":
        """Build a cell over a :class:`PortLabeledGraph` without copies.

        Shares the graph's canonical port tuple and its cached CSR, so
        scheduling hundreds of cells over one graph packs (and digests)
        it exactly once.
        """
        cell = cls(
            graph_ports=graph.port_lists(),
            agents=tuple(int(a) for a in agents),
            ports=tuple(int(p) for p in ports),
            max_rounds=int(max_rounds),
            **extra,
        )
        object.__setattr__(cell, "_csr", graph.to_csr())
        return cell

    @property
    def n(self) -> int:
        return len(self.graph_ports)

    @property
    def k(self) -> int:
        return len(self.agents)

    def csr(self) -> Any:
        """The graph's CSR packing (computed once per cell, shared by
        cells built through :meth:`from_graph` or a chunk graph table)."""
        cached = getattr(self, "_csr", None)
        if cached is None:
            from repro.graphs.base import GraphCSR

            cached = GraphCSR.from_ports(self.graph_ports)
            object.__setattr__(self, "_csr", cached)
        return cached

    @property
    def graph_digest(self) -> str:
        return self.csr().digest

    def identity(self) -> dict:
        return {
            "kind": "general-rotor-cell",
            "schema": CELL_SCHEMA_VERSION,
            "graph": self.graph_digest,
            "n": self.n,
            "agents": list(self.agents),
            "ports": list(self.ports),
            "max_rounds": self.max_rounds,
        }

    @cached_property
    def config_hash(self) -> str:
        return _hash_identity(self.identity())

    def to_dict(self) -> dict:
        return self.identity()

    @classmethod
    def from_dict(
        cls, data: dict, graphs: Mapping[str, Any] | None = None
    ) -> "GeneralRotorCell":
        """Rebuild from the compact dict plus a digest-keyed graph table.

        ``graphs`` maps digests to :class:`repro.graphs.base.GraphCSR`
        instances (an executor chunk payload carries exactly the table
        its cells need).
        """
        _check_schema(data, "general-rotor-cell")
        digest = data["graph"]
        if graphs is None or digest not in graphs:
            raise ValueError(
                f"general-rotor-cell {digest[:12]}… needs its graph "
                "table entry to deserialize"
            )
        csr = graphs[digest]
        graph_ports = getattr(csr, "_cached_ports", None)
        if graph_ports is None:
            graph_ports = csr.to_ports()
            object.__setattr__(csr, "_cached_ports", graph_ports)
        cell = cls(
            graph_ports=graph_ports,
            agents=tuple(int(a) for a in data["agents"]),
            ports=tuple(int(p) for p in data["ports"]),
            max_rounds=int(data["max_rounds"]),
        )
        object.__setattr__(cell, "_csr", csr)
        return cell


@dataclass(frozen=True)
class LabeledGeneralRotorCell(GeneralRotorCell):
    """A general cell with display labels for sweep tables.

    ``family`` and ``seed`` name how the instance was derived; they are
    deliberately *not* part of the identity, so a labeled scenario cell
    and an unlabeled experiment cell over the same (graph, agents,
    ports, budget) share one cache entry.
    """

    family: str = ""
    seed: int = 0

    @property
    def placement(self) -> str:
        return self.family

    @property
    def pointer(self) -> str:
        return "random"


_KINDS: dict[str, Any] = {
    "rotor-cell": RotorCell,
    "walk-cover-cell": WalkCoverCell,
    "walk-gaps-cell": WalkGapsCell,
    "general-rotor-cell": GeneralRotorCell,
}


def _check_schema(data: dict, kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} dict, got {data.get('kind')!r}")
    if data.get("schema") != CELL_SCHEMA_VERSION:
        raise ValueError(
            f"cell schema {data.get('schema')!r} does not match "
            f"{CELL_SCHEMA_VERSION}"
        )


def cell_from_dict(
    data: dict, graphs: Mapping[str, Any] | None = None
) -> Any:
    """Rebuild any sweep cell from its dict form.

    Explicit cells carry a ``kind`` marker; dicts without one are
    classic :class:`repro.sweep.spec.SweepConfig` cells.  General cells
    additionally need ``graphs``, the chunk's digest-keyed graph table.
    """
    kind = data.get("kind")
    if kind is None:
        from repro.sweep.spec import SweepConfig

        return SweepConfig.from_dict(data)
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown cell kind {kind!r}; known: {sorted(_KINDS)}"
        ) from None
    if kind == "general-rotor-cell":
        return cls.from_dict(data, graphs=graphs)
    return cls.from_dict(data)
