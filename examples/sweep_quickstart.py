#!/usr/bin/env python3
"""Sweep quickstart: a declarative, cached, two-job parameter sweep.

Shows the :mod:`repro.sweep` workflow end to end:

1. declare a scenario (grid of sizes, agent counts and initialization
   families, plus the metrics to record);
2. execute it with two worker processes and an on-disk result cache;
3. run it again — every cell is served from the cache, no simulation.

The same scenarios are reachable from the command line::

    python -m repro sweep table1 --jobs 2 --cache out/sweep-cache

A second sweep then turns on the model axis: the same grid with both
the rotor-router and the k-random-walks baseline (walk cells as
mean ± CI over repetitions), joined into speed-up and walk/rotor
ratio tables — the paper's Table 1 workflow in a few lines.

Run:  python examples/sweep_quickstart.py [cache_dir]
"""

import sys
import tempfile

from repro.sweep import (
    InitFamily,
    ScenarioSpec,
    run_sweep,
    summary_tables,
)


def main() -> None:
    cache_dir = (
        sys.argv[1] if len(sys.argv) > 1
        else tempfile.mkdtemp(prefix="sweep-cache-")
    )

    spec = ScenarioSpec(
        name="quickstart",
        ns=(64, 128, 256),
        ks=(2, 4, 8),
        families=(
            # Table 1's two corners, plus an averaged random case.
            InitFamily("all_on_one", "toward_node0"),
            InitFamily("equally_spaced", "negative"),
            InitFamily("random", "random"),
        ),
        metrics=("cover",),
        seeds=(0, 1),
        description="cover times across the Table 1 corners",
    )
    print(f"{spec.num_configs} configurations, spec {spec.spec_hash[:12]}")

    result = run_sweep(spec, jobs=2, cache_dir=cache_dir)
    print(result.table().render())
    print(
        f"\nfirst run:  {result.cache_misses} computed, "
        f"{result.cache_hits} cached, {result.elapsed:.2f}s"
    )

    again = run_sweep(spec, jobs=2, cache_dir=cache_dir)
    print(
        f"second run: {again.cache_misses} computed, "
        f"{again.cache_hits} cached, {again.elapsed:.3f}s "
        f"({result.elapsed / max(again.elapsed, 1e-9):.0f}x faster — "
        f"cache at {cache_dir})"
    )

    # The model axis: rotor vs the random-walk baseline on one grid,
    # with the k=1 cells anchoring the speed-up join.
    versus = ScenarioSpec(
        name="quickstart-versus",
        ns=(64,),
        ks=(1, 2, 4, 8),
        families=(InitFamily("equally_spaced", "negative"),),
        metrics=("cover",),
        models=("rotor", "walk"),
        repetitions=5,
        description="rotor vs k random walks, best placement",
    )
    comparison = run_sweep(versus, jobs=2, cache_dir=cache_dir)
    print()
    for table in summary_tables(comparison):
        print(table.render())
        print()


if __name__ == "__main__":
    main()
