#!/usr/bin/env python3
"""Quickstart: simulate the multi-agent rotor-router and k random walks.

Covers the library's three basic moves:

1. build a k-agent rotor-router on the ring from a placement and a
   pointer initialization;
2. run it to cover and inspect the result;
3. compare with k independent random walks from the same placement.

Run:  python examples/quickstart.py [n] [k]
"""

import sys

from repro import RingRandomWalks, RingRotorRouter
from repro.core import placement, pointers
from repro.randomwalk.cover import estimate_cover_time
from repro.theory import bounds


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"ring of n={n} nodes, k={k} agents")
    print(f"paper regime k < n^(1/11) satisfied: {k ** 11 < n}")
    print()

    # --- rotor-router, best placement (equally spaced) ----------------
    agents = placement.equally_spaced(n, k)
    directions = pointers.ring_negative(n, agents)  # adversarial pointers
    engine = RingRotorRouter(n, directions, agents, track_counts=False)
    cover = engine.run_until_covered()
    print("rotor-router, equally spaced agents, adversarial pointers:")
    print(f"  cover time            {cover}")
    print(f"  Θ(n²/k²) prediction   {bounds.rotor_cover_best(n, k):.0f}"
          f"  (ratio {cover / bounds.rotor_cover_best(n, k):.2f})")
    print()

    # --- rotor-router, worst placement (all on one node) --------------
    engine = RingRotorRouter(
        n,
        pointers.ring_toward_node(n, 0),
        placement.all_on_one(k),
        track_counts=False,
    )
    cover_worst = engine.run_until_covered()
    print("rotor-router, all agents on node 0, pointers toward it:")
    print(f"  cover time            {cover_worst}")
    print(f"  Θ(n²/log k) prediction {bounds.rotor_cover_worst(n, k):.0f}"
          f"  (ratio {cover_worst / bounds.rotor_cover_worst(n, k):.2f})")
    print()

    # --- k random walks from the same placements ----------------------
    spaced = estimate_cover_time(
        lambda seed: RingRandomWalks(n, agents, seed=seed),
        repetitions=10,
    )
    print("k random walks, equally spaced (10 repetitions):")
    print(f"  mean cover time       {spaced.mean:.0f}"
          f"  (95% CI [{spaced.ci_low:.0f}, {spaced.ci_high:.0f}])")
    print(f"  Θ((n/k)² log²k)       {bounds.walk_cover_best(n, k):.0f}")
    print(f"  deterministic wins by {spaced.mean / cover:.1f}x "
          "(the paper's log²k factor)")


if __name__ == "__main__":
    main()
