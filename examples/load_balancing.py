#!/usr/bin/env python3
"""Rotor-router load balancing: deterministic token diffusion.

The related-work application from the paper's §1.2: with many more
tokens than nodes, the multi-agent rotor-router is a load balancer.
Cooper–Spencer-style behaviour: the rotor-router keeps every node's
load within a small *constant* of the fair share, forever, while
random-walk diffusion fluctuates stochastically.

Run:  python examples/load_balancing.py [tokens-per-node]
"""

import sys

from repro.graphs import ring_graph, torus_2d
from repro.loadbalance import (
    RotorDiffusion,
    discrepancy_trace,
    random_walk_diffusion,
    uniform_discrepancy,
)


def skewed_tokens(n: int, total: int) -> list[int]:
    """All tokens piled on node 0 — the worst starting imbalance."""
    return [0] * total


def main() -> None:
    per_node = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    for name, graph in (
        ("ring n=64", ring_graph(64)),
        ("torus 8x8", torus_2d(8, 8)),
    ):
        n = graph.num_nodes
        total = per_node * n
        rounds = 40 * n
        print(f"{name}: {total} tokens, all initially on node 0")

        diffusion = RotorDiffusion(graph, skewed_tokens(n, total))
        trace = discrepancy_trace(
            diffusion, total_rounds=rounds, sample_every=n
        )
        print(
            f"  rotor-router:  discrepancy after {rounds} rounds = "
            f"{trace.final:.1f} tokens (peak during run {trace.peak:.1f}; "
            f"fair share {per_node}/node)"
        )

        walk_loads = random_walk_diffusion(
            graph, skewed_tokens(n, total), rounds=rounds, seed=3
        )
        print(
            f"  random walks:  discrepancy after {rounds} rounds = "
            f"{uniform_discrepancy(walk_loads):.1f} tokens "
            "(stochastic, fluctuates every round)"
        )
        print()

    print("the rotor-router's final discrepancy is a small constant —")
    print("the deterministic analogue of a perfectly mixed random walk.")


if __name__ == "__main__":
    main()
