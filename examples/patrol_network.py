#!/usr/bin/env python3
"""Network patrolling: a deterministic idle-time guarantee.

The scenario that motivates the paper's return-time result (and the
"Edge Ant Walk" line of work it cites): k patrol agents must visit
every station of a ring-shaped perimeter regularly.  With random-walk
patrols a station's *expected* idle time is n/k, but any particular
station can stay unvisited arbitrarily long.  The rotor-router gives a
deterministic ceiling: after stabilization, no station waits more than
Θ(n/k) rounds (Theorem 6) — even if the patrol starts from the most
chaotic initialization.

Run:  python examples/patrol_network.py [n] [k]
"""

import sys

from repro.analysis.return_time import ring_rotor_return_time_exact
from repro.core import placement, pointers
from repro.randomwalk.visits import ring_walk_gap_statistics


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    print(f"perimeter of {n} stations, {k} patrol agents")
    print(f"fair-share idle time n/k = {n / k:.1f} rounds")
    print()

    # Deterministic patrol: rotor-router from three initializations.
    cases = {
        "depot start (all agents at station 0)": (
            placement.all_on_one(k),
            pointers.ring_toward_node(n, 0),
        ),
        "spread start (equally spaced)": (
            placement.equally_spaced(n, k),
            pointers.ring_negative(n, placement.equally_spaced(n, k)),
        ),
        "scrambled start (random)": (
            placement.random_nodes(n, k, seed=42),
            pointers.ring_random(n, seed=42),
        ),
    }
    print("rotor-router patrol (exact worst idle time in the limit):")
    for name, (agents, directions) in cases.items():
        result = ring_rotor_return_time_exact(n, agents, directions)
        print(
            f"  {name:44s} worst idle {result.worst_gap:5.0f} rounds"
            f"  (= {result.normalized:.2f} x n/k;"
            f" stabilized after {result.preperiod} rounds)"
        )
    print()

    # Random-walk patrol: same fair share, no ceiling.
    stats = ring_walk_gap_statistics(
        n, k, node=0, observation_rounds=800 * n, burn_in=4 * n, seed=7
    )
    print("random-walk patrol at one station (long observation):")
    print(f"  mean idle  {stats.mean:8.1f} rounds (expectation n/k = {n/k:.1f})")
    print(f"  p99 idle   {stats.p99:8.1f} rounds")
    print(f"  worst idle {stats.maximum:8.1f} rounds "
          "<- keeps growing with the observation window")
    print()
    print("takeaway: identical average frequency, but only the")
    print("deterministic patrol bounds the worst case.")


if __name__ == "__main__":
    main()
