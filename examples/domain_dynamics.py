#!/usr/bin/env python3
"""Watch agent domains form, grow like sqrt(t), and equalize.

An ASCII rendering of the paper's §2.2-2.3 story: start k agents on one
node of the ring with adversarial pointers, and watch

* the covered region grow like sqrt(t),
* the domains (here separated by the agents' positions) follow the
  Lemma 13 profile while the ring is uncovered,
* the lazy domains equalize after coverage (Lemma 12).

Run:  python examples/domain_dynamics.py [n] [k]
"""

import sys

from repro.analysis.domains_stats import trace_domains
from repro.core import placement, pointers
from repro.core.domains import VisitTypeTracker, domain_snapshot
from repro.core.ring import RingRotorRouter
from repro.core.trace import render_domains
from repro.theory.sequences import solve_profile


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    directions = pointers.ring_toward_node(n, 0)
    engine = RingRotorRouter(
        n, directions, placement.all_on_one(k), track_counts=False
    )
    tracker = VisitTypeTracker(engine)

    print(f"n={n} ring, k={k} agents all on node 0, pointers toward it")
    print("legend: letters = domains (capital = agent anchor), '.' = unvisited")
    print()
    checkpoints = [n // 8, n, 4 * n, 10 * n, 25 * n, 60 * n, 150 * n]
    for target in checkpoints:
        while engine.round < target:
            tracker.advance()
        if max(engine.counts.values()) > 2:
            print(f"round {engine.round:>7}: (domains not yet separated)")
            continue
        snapshot = domain_snapshot(engine, tracker)
        covered = n - len(snapshot.unvisited)
        print(
            f"round {engine.round:>7}: covered {covered:>4}/{n}  "
            f"{render_domains(snapshot, width=72)}"
        )
    print()

    # Growth exponent while uncovered (fresh run, sampled).
    trace = trace_domains(
        n,
        placement.all_on_one(k),
        directions,
        total_rounds=60 * n,
        sample_every=max(1, n // 4),
        stop_at_cover=True,
    )
    print(f"covered-region growth exponent: {trace.growth_exponent():.3f} "
          "(§2.3 predicts 0.5)")

    # Lemma 12: lazy domains equalize after coverage.
    while engine.unvisited:
        tracker.advance()
    for _ in range(80 * n):
        tracker.advance()
    snapshot = domain_snapshot(engine, tracker)
    print(f"lazy domain sizes after settling: {snapshot.lazy_sizes()} "
          f"(max adjacent difference "
          f"{snapshot.max_adjacent_lazy_difference()}; Lemma 12 bound 10)")

    if k > 3:
        profile = solve_profile(k)
        shares = ", ".join(f"{a:.3f}" for a in profile.a[1:])
        print(f"Lemma 13 uncovered-phase profile for reference: {shares}")


if __name__ == "__main__":
    main()
