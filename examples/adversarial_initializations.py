#!/usr/bin/env python3
"""The adversary's toolbox: how initialization drives cover time.

Walks through the initializations studied by the paper and shows the
full quadratic-to-(n/k)² spectrum on one ring, including the Theorem 4
recipe (remote vertex + negative pointers) and the Lemma 15 geometry
that makes it work.

Run:  python examples/adversarial_initializations.py [n] [k]
"""

import sys

from repro.analysis.cover_time import ring_rotor_cover_time
from repro.analysis.remote import (
    count_remote_vertices,
    remote_vertices_far_from_agents,
)
from repro.core import placement, pointers
from repro.theory import bounds
from repro.util.tables import Table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    spaced = placement.equally_spaced(n, k)
    scenarios = [
        (
            "all-on-one + pointers toward start (Thm 1 worst case)",
            placement.all_on_one(k),
            pointers.ring_toward_node(n, 0),
        ),
        (
            "all-on-one + uniform pointers",
            placement.all_on_one(k),
            pointers.ring_uniform(n),
        ),
        (
            "half-ring cluster + negative pointers",
            placement.half_ring(n, k),
            pointers.ring_negative(n, placement.half_ring(n, k)),
        ),
        (
            "equally spaced + negative pointers (Thm 4 adversary)",
            spaced,
            pointers.ring_negative(n, spaced),
        ),
        (
            "equally spaced + positive pointers (friendliest)",
            spaced,
            pointers.ring_positive(n, spaced),
        ),
    ]

    table = Table(
        columns=["initialization", "cover", "x (n/k)^2", "x n^2/log k"],
        caption=f"Rotor-router cover times on the n={n} ring with k={k}",
        formats=[None, "d", ".2f", ".2f"],
    )
    for name, agents, directions in scenarios:
        cover = ring_rotor_cover_time(n, agents, directions)
        table.add_row(
            name,
            cover,
            cover / bounds.rotor_cover_best(n, k),
            cover / bounds.rotor_cover_worst(n, k),
        )
    print(table.render())
    print()

    # The geometry behind Theorem 4: remote vertices.
    remote_total = count_remote_vertices(n, spaced)
    far = remote_vertices_far_from_agents(n, spaced, max(1, n // (9 * k)))
    print("Theorem 4's geometric ingredient (Definition 2 / Lemma 15):")
    print(f"  remote vertices for the spaced placement: {remote_total} "
          f"of {n} (Lemma 15 guarantees ≥ 0.8n − o(n))")
    print(f"  remote vertices at distance ≥ n/(9k) from every agent: "
          f"{len(far)}")
    print()
    print("even the best placement cannot beat Ω((n/k)²): the adversary")
    print("anchors a reflecting region around a far remote vertex.")


if __name__ == "__main__":
    main()
