#!/usr/bin/env python3
"""Speed-up study: what do k agents buy you, and where?

Reproduces the paper's headline comparison as one readable table: the
speed-up of k agents over one, for the rotor-router and for random
walks, under the best and worst placements — the four regimes of
Table 1 — plus the rotor-router on a torus (where, as in Yanovski et
al.'s experiments, the speed-up is nearly linear).

Run:  python examples/parallel_speedup_study.py [n]
"""

import math
import sys

from repro.analysis.cover_time import (
    ring_rotor_cover_time,
    ring_walk_cover_estimate,
    rotor_cover_time_general,
)
from repro.core import placement, pointers
from repro.core.pointers import random_ports
from repro.graphs import torus_2d
from repro.util.rng import derive_seed, make_rng
from repro.util.tables import Table


def rotor_worst(n: int, k: int) -> float:
    return ring_rotor_cover_time(
        n, placement.all_on_one(k), pointers.ring_toward_node(n, 0)
    )


def rotor_best(n: int, k: int) -> float:
    agents = placement.equally_spaced(n, k)
    return ring_rotor_cover_time(n, agents, pointers.ring_negative(n, agents))


def walk_mean(n: int, k: int, spaced: bool, repetitions: int = 8) -> float:
    agents = (
        placement.equally_spaced(n, k) if spaced else placement.all_on_one(k)
    )
    return ring_walk_cover_estimate(
        n, agents, repetitions, base_seed=derive_seed(0, "study", n, k, spaced)
    ).mean


def torus_cover(side: int, k: int) -> float:
    graph = torus_2d(side, side)
    rng = make_rng(derive_seed(1, "torus", side, k))
    agents = [int(rng.integers(0, graph.num_nodes)) for _ in range(k)]
    return rotor_cover_time_general(graph, agents, random_ports(graph, rng))


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    ks = [2, 4, 8, 16]
    side = max(8, int(math.isqrt(n)) // 2 * 2)

    base = {
        "rr-worst": rotor_worst(n, 1),
        "rr-best": rotor_best(n, 1),
        "rw-worst": walk_mean(n, 1, spaced=False),
        "rw-best": walk_mean(n, 1, spaced=True),
        "torus": torus_cover(side, 1),
    }
    table = Table(
        columns=[
            "k",
            "RR worst",
            "RW worst",
            "RR best",
            "RW best",
            f"RR torus {side}x{side}",
            "log k",
            "k^2",
        ],
        caption=f"Cover-time speed-up S(k) = C(1)/C(k) on the n={n} ring",
        formats=["d", ".2f", ".2f", ".1f", ".1f", ".2f", ".2f", "d"],
    )
    for k in ks:
        table.add_row(
            k,
            base["rr-worst"] / rotor_worst(n, k),
            base["rw-worst"] / walk_mean(n, k, spaced=False),
            base["rr-best"] / rotor_best(n, k),
            base["rw-best"] / walk_mean(n, k, spaced=True),
            base["torus"] / torus_cover(side, k),
            math.log(k),
            k * k,
        )
    print(table.render())
    print()
    print("reading guide (paper Table 1):")
    print("  * worst-placement columns track log k for both models;")
    print("  * best-placement rotor-router tracks k^2; random walks lag")
    print("    behind by the log^2 k factor;")
    print("  * the torus column shows the near-linear general-graph")
    print("    behaviour observed by Yanovski et al.")


if __name__ == "__main__":
    main()
