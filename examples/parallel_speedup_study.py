#!/usr/bin/env python3
"""Speed-up study: what do k agents buy you, and where?

Reproduces the paper's headline comparison as one readable table: the
speed-up of k agents over one, for the rotor-router and for random
walks, under the best and worst placements — the four regimes of
Table 1 — plus the rotor-router on a torus (where, as in Yanovski et
al.'s experiments, the speed-up is nearly linear).

Every measurement schedules onto one batched
:class:`repro.analysis.backend.MeasurementPlan`: the ring cells pack
into the ring kernels, the torus cells into the CSR general-graph
kernel, and a single ``execute()`` runs the whole grid before any
table row is computed.  The ``computed=X cached=Y`` accounting line at
the end shows how much actually simulated.

Run:  python examples/parallel_speedup_study.py [n]
"""

import math
import sys

from repro.analysis.backend import MeasurementPlan
from repro.core import placement, pointers
from repro.graphs import torus_2d
from repro.util.rng import derive_seed
from repro.util.tables import Table


def schedule_rotor_worst(plan: MeasurementPlan, n: int, k: int):
    return plan.rotor_cover(
        n, placement.all_on_one(k), pointers.ring_toward_node(n, 0)
    )


def schedule_rotor_best(plan: MeasurementPlan, n: int, k: int):
    agents = placement.equally_spaced(n, k)
    return plan.rotor_cover(n, agents, pointers.ring_negative(n, agents))


def schedule_walk(plan: MeasurementPlan, n: int, k: int, spaced: bool,
                  repetitions: int = 8):
    agents = (
        placement.equally_spaced(n, k) if spaced else placement.all_on_one(k)
    )
    return plan.walk_cover(
        n, agents, repetitions, base_seed=derive_seed(0, "study", n, k, spaced)
    )


def schedule_torus(plan: MeasurementPlan, graph, side: int, k: int):
    # Historical derivation of the torus sample (seed stream 1).
    from repro.core.pointers import random_ports
    from repro.util.rng import make_rng

    rng = make_rng(derive_seed(1, "torus", side, k))
    agents = [int(rng.integers(0, graph.num_nodes)) for _ in range(k)]
    return plan.rotor_cover_general(graph, agents, random_ports(graph, rng))


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    ks = [2, 4, 8, 16]
    side = max(8, int(math.isqrt(n)) // 2 * 2)
    torus = torus_2d(side, side)

    plan = MeasurementPlan(backend="batch", jobs=1, cache_dir=None)
    handles = {}
    for k in [1, *ks]:
        handles[("rr-worst", k)] = schedule_rotor_worst(plan, n, k)
        handles[("rr-best", k)] = schedule_rotor_best(plan, n, k)
        handles[("rw-worst", k)] = schedule_walk(plan, n, k, spaced=False)
        handles[("rw-best", k)] = schedule_walk(plan, n, k, spaced=True)
        handles[("torus", k)] = schedule_torus(plan, torus, side, k)
    stats = plan.execute()

    def value(column: str, k: int) -> float:
        resolved = handles[(column, k)].value
        return float(getattr(resolved, "mean", resolved))

    table = Table(
        columns=[
            "k",
            "RR worst",
            "RW worst",
            "RR best",
            "RW best",
            f"RR torus {side}x{side}",
            "log k",
            "k^2",
        ],
        caption=f"Cover-time speed-up S(k) = C(1)/C(k) on the n={n} ring",
        formats=["d", ".2f", ".2f", ".1f", ".1f", ".2f", ".2f", "d"],
    )
    for k in ks:
        table.add_row(
            k,
            value("rr-worst", 1) / value("rr-worst", k),
            value("rw-worst", 1) / value("rw-worst", k),
            value("rr-best", 1) / value("rr-best", k),
            value("rw-best", 1) / value("rw-best", k),
            value("torus", 1) / value("torus", k),
            math.log(k),
            k * k,
        )
    print(table.render())
    print()
    print("reading guide (paper Table 1):")
    print("  * worst-placement columns track log k for both models;")
    print("  * best-placement rotor-router tracks k^2; random walks lag")
    print("    behind by the log^2 k factor;")
    print("  * the torus column shows the near-linear general-graph")
    print("    behaviour observed by Yanovski et al.")
    print(stats.summary_line())


if __name__ == "__main__":
    main()
